// Package faultinject is a deterministic fault-injection harness for chaos
// testing the serving stack. Production code marks interesting points —
// cache lookups, compiles, queue submissions, model forward passes — as
// named sites and calls Fire at each; when no injector is active a Fire is a
// single atomic load, so the hooks cost nothing in production and need no
// build tags.
//
// Tests activate an Injector built from seed-scheduled rules. Whether a
// given hit of a given site faults is a pure function of (seed, site, rule,
// hit number), so a chaos run is reproducible: the same seed injects the
// same faults at the same points of the same request interleaving.
//
// Three fault kinds cover the failure modes a resilient server must absorb:
// errors (dependency failure), latency (slow dependency, deadline
// pressure), and panics (programming error in a handler or worker).
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by Error faults. Injected
// failures wrap it, so tests can tell a synthetic failure from a real one.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind classifies a fault.
type Kind int

// Fault kinds.
const (
	// Error makes Fire return an error.
	Error Kind = iota
	// Latency makes Fire sleep for Delay, then succeed.
	Latency
	// Panic makes Fire panic with a *Panicked value.
	Panic
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Panic:
		return "panic"
	}
	return "error"
}

// Panicked is the value an injected panic carries, so recovery middleware
// and tests can attribute the panic to the harness.
type Panicked struct {
	Site string
	Hit  int64
}

// Error renders the panic value.
func (p *Panicked) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// Rule schedules one fault at one site.
type Rule struct {
	// Site is the registered site name the rule applies to.
	Site string
	// Kind selects the fault behaviour.
	Kind Kind
	// Err is returned by Error faults (wrapped around ErrInjected when
	// nil).
	Err error
	// Delay is the sleep of Latency faults.
	Delay time.Duration
	// Rate is the deterministic per-hit firing probability in [0, 1]: hit n
	// fires iff a hash of (seed, site, rule, n) falls below Rate. Ignored
	// when Hits is set.
	Rate float64
	// Hits lists explicit 1-based hit numbers that fire (exact schedules
	// for targeted tests). When set, Rate is ignored.
	Hits []int64
}

func (r *Rule) fires(seed uint64, rule int, n int64) bool {
	if len(r.Hits) > 0 {
		for _, h := range r.Hits {
			if h == n {
				return true
			}
		}
		return false
	}
	if r.Rate <= 0 {
		return false
	}
	if r.Rate >= 1 {
		return true
	}
	x := mix(seed ^ strHash(r.Site) ^ uint64(rule)*0x9E3779B97F4A7C15 ^ uint64(n))
	return float64(x>>11)/(1<<53) < r.Rate
}

// mix is splitmix64: a full-avalanche mixer, so consecutive hit numbers
// decorrelate.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// strHash is FNV-1a.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Injector is a configured set of rules. One injector may be active per
// process at a time.
type Injector struct {
	seed  uint64
	rules map[string][]Rule
	hits  sync.Map // site → *atomic.Int64: total Fire calls
	fired sync.Map // site → *atomic.Int64: faults actually injected
}

// New builds an injector from seed-scheduled rules.
func New(seed uint64, rules ...Rule) *Injector {
	inj := &Injector{seed: seed, rules: make(map[string][]Rule)}
	for _, r := range rules {
		inj.rules[r.Site] = append(inj.rules[r.Site], r)
	}
	return inj
}

func (inj *Injector) counter(m *sync.Map, site string) *atomic.Int64 {
	if c, ok := m.Load(site); ok {
		return c.(*atomic.Int64)
	}
	c, _ := m.LoadOrStore(site, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Hits reports how many times the site fired through this injector.
func (inj *Injector) Hits(site string) int64 { return inj.counter(&inj.hits, site).Load() }

// Fired reports how many faults the injector actually injected at the site.
func (inj *Injector) Fired(site string) int64 { return inj.counter(&inj.fired, site).Load() }

// fire runs the site's rules against the next hit number.
func (inj *Injector) fire(site string) error {
	rules := inj.rules[site]
	n := inj.counter(&inj.hits, site).Add(1)
	for ri := range rules {
		r := &rules[ri]
		if !r.fires(inj.seed, ri, n) {
			continue
		}
		inj.counter(&inj.fired, site).Add(1)
		switch r.Kind {
		case Latency:
			time.Sleep(r.Delay)
			return nil
		case Panic:
			panic(&Panicked{Site: site, Hit: n})
		default:
			if r.Err != nil {
				return fmt.Errorf("%s: %w", site, fmt.Errorf("%v: %w", r.Err, ErrInjected))
			}
			return fmt.Errorf("%s: %w", site, ErrInjected)
		}
	}
	return nil
}

// active is the process-global injector; nil means every Fire is a no-op.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-global injector and returns the
// function that removes it. Tests defer the deactivation.
func Activate(inj *Injector) (deactivate func()) {
	active.Store(inj)
	return func() { active.Store(nil) }
}

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// Fire is called by production code at a named site. With no active
// injector it costs one atomic load and returns nil; otherwise it applies
// the injector's rules for the site — returning an injected error, sleeping
// an injected latency, or panicking an injected panic.
func Fire(site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.fire(site)
}

// registry tracks every site name production code declared, so chaos tests
// can assert they cover all of them.
var registry sync.Map

// Register declares a site name and returns it, for use in var blocks:
//
//	var siteCompile = faultinject.Register("serve.compile")
func Register(site string) string {
	registry.Store(site, true)
	return site
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	var out []string
	registry.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}
