package interp

import (
	"fmt"
	"math"
	"unsafe"

	"repro/internal/ir"
)

// This file is the production execution core: each function is lowered once
// per run into a flat array of pre-decoded micro-ops, and dispatch is a
// single for/switch over that array. Lowering pre-resolves every operand
// (register indices, branch-count slots, branch/jump target pcs, callee
// indices, global addresses), threads block fallthrough so a block boundary
// costs nothing, fuses the two hottest instruction pairs
// (compare→conditional-branch and load-immediate→ALU), and charges fuel once
// per straight-line segment instead of once per instruction.
//
// The micro-op path must stay bit-identical to reference.go in every
// observable way. The load-bearing arguments:
//
//   - Fuel is charged at segment granularity, where a segment is a maximal
//     straight-line run of instructions inside one block, split after each
//     call (so a callee's own charges interleave exactly as before). A
//     charge that cannot be covered (fuel < segment length) hands the whole
//     remaining activation to the reference loop at the segment's original
//     (block, insn) coordinates — and since fuel < length guarantees the
//     reference loop errors inside that segment (per-instruction fuel runs
//     dry at the original instruction, unless an earlier fault fires first),
//     and errors discard the profile entirely, intermediate fuel values are
//     unobservable on every path.
//   - Writes to the hardwired zero registers are redirected at decode time
//     to a scratch slot (index 64), so reads of R31/F31 always see zero
//     without per-instruction resets.
//   - Instructions after a block terminator are dead in the reference loop
//     (it leaves the block immediately), so lowering neither emits nor
//     charges them.

// numURegs is the micro-op register file: the 64 architectural registers
// plus a write-only scratch slot (index 64) that absorbs redirected
// zero-register writes. The array is sized to the full uint8 range so that
// indexing it with a micro-op register field needs no bounds check.
const (
	numURegs   = 256
	scratchReg = ir.NumRegs
)

// uop is one pre-decoded micro-op. Field meaning depends on op; aux packs
// branch-count slot (high 32 bits) with target pc (low 32 bits) for
// branches, and holds resolved addresses / callee indices elsewhere.
type uop struct {
	op        uint16
	dst, a, b uint8
	_         [3]byte // explicit padding; keeps the struct at 24 bytes
	imm       int64
	aux       int64
}

// Micro-op opcodes. The dense small-integer space compiles to a jump table.
const (
	uCharge     uint16 = iota // fuel check for one segment; imm=len, aux=blk<<32|insn
	uChargeEdge               // block-entry charge that also records the CFG edge
	uLdi                      // dst = imm (int or float bits)
	uLda                      // dst = aux (pre-resolved global address)
	uMov                      // dst = a (int or float)
	uCmovEq                   // if a == 0 { dst = b }
	uCmovNe
	uFCmovEq
	uFCmovNe
	uLd // dst = mem[a+imm]
	uSt // mem[a+imm] = b

	// Integer ALU, register second operand.
	uAddQ
	uSubQ
	uMulQ
	uDivQ
	uRemQ
	uAndQ
	uOrQ
	uXorQ
	uSllQ
	uSrlQ
	uCmpEq
	uCmpLt
	uCmpLe

	// Integer ALU, immediate second operand.
	uAddQI
	uSubQI
	uMulQI
	uDivQI
	uRemQI
	uAndQI
	uOrQI
	uXorQI
	uSllQI
	uSrlQI
	uCmpEqI
	uCmpLtI
	uCmpLeI

	// Fused load-immediate→ALU: regs[b] = imm (the ldi), then
	// dst = regs[a] op imm. b is the ldi destination, written first so an
	// ALU that also reads it as its A operand sees the new value.
	uAddQIW
	uSubQIW
	uMulQIW
	uDivQIW
	uRemQIW
	uAndQIW
	uOrQIW
	uXorQIW
	uSllQIW
	uSrlQIW
	uCmpEqIW
	uCmpLtIW
	uCmpLeIW

	// Float ALU.
	uAddT
	uSubT
	uMulT
	uDivT
	uFAbs
	uFNeg
	uCvtQT
	uCvtTQ
	uCmpTEq
	uCmpTLt
	uCmpTLe

	// Conditional branches: count slot in aux high bits, taken-target pc in
	// aux low bits; not-taken falls through to the next micro-op.
	uBeq
	uBne
	uBlt
	uBle
	uBgt
	uBge
	uFbeq
	uFbne
	uFblt
	uFble
	uFbgt
	uFbge
	uBeq2
	uBne2

	// Fused compare→conditional-branch: dst = compare result (written back,
	// so later readers of the flag register still see it), then branch on it.
	uCmpEqBeq
	uCmpEqBne
	uCmpLtBeq
	uCmpLtBne
	uCmpLeBeq
	uCmpLeBne
	uCmpEqIBeq
	uCmpEqIBne
	uCmpLtIBeq
	uCmpLtIBne
	uCmpLeIBeq
	uCmpLeIBne

	uBr      // pc = aux
	uJmp     // pc = jmp[imm][regs[a]]
	uBsr     // call ufuncs[aux]
	uRet     // return V0/FV0
	uRtcall  // runtime intrinsic imm
	uError   // return errs[imm] (unresolved symbol / unimplemented opcode)
	uFellOff // return errs[imm] ("control fell off the end")

	// Superinstructions: the dynamically hottest adjacent pairs, merged by
	// the emitter's lookback pass (mergeUops) into one dispatch. Each
	// executes its two components strictly in original order, so a fault in
	// the second component observes every effect of the first, exactly as
	// the reference loop would.
	uChargeLd  // segment charge (aux packs len/blk/insn) then dst = mem[a+imm]
	uChargeLda // segment charge (aux packs len/blk/insn) then dst = imm (address)
	uLdaLd     // a = aux (address), then dst = mem[aux+imm]
	uLdLda     // dst = mem[a+imm], then reg aux&255 = aux>>8 (address)
	uLdLd      // dst = mem[a+imm], then b = mem[reg(aux&255) + aux>>8]
	uLdAddQ    // dst = mem[a+imm], then rd(aux) = ra(aux) + rb(aux)
	uLdMulQ    // dst = mem[a+imm], then rd(aux) = ra(aux) * rb(aux)
	uAddQLd    // dst = a + b, then rd(aux) = mem[ra(aux) + aux>>16]
	uMulQLd    // dst = a * b, then rd(aux) = mem[ra(aux) + aux>>16]
	uLdSt      // dst = mem[a+imm], then mem[ra(aux) + aux>>16] = rb(aux)
	uStLd      // mem[a+imm] = b, then dst = mem[reg(aux&255) + aux>>8]
	uStLda     // mem[a+imm] = b, then dst = aux (address)
	uAddQAddQ  // dst = a + b, then rd(aux) = ra(aux) + rb(aux)
	uLdAddQI   // dst = mem[a+imm], then rd(aux) = ra(aux) + aux>>16
	uAddQISt   // dst = a + imm, then mem[ra(aux) + aux>>16] = rb(aux)
	uMovMov    // dst = a, then b = reg(aux)
	uStSt      // mem[a+imm] = b, then mem[ra(aux) + aux>>16] = rb(aux)
	uLdiSt     // dst = imm, then mem[ra(aux) + aux>>16] = rb(aux)
	uStLdi     // mem[a+imm] = b, then dst = aux

	// Charge folded into the segment's first real op (aux packs len/blk/insn
	// exactly as uChargeLd).
	uChargeMov   // charge, then dst = a
	uChargeLdi   // charge, then dst = imm
	uChargeAddQ  // charge, then dst = a + b
	uChargeAddQI // charge, then dst = a + imm
	uChargeSt    // charge, then mem[a+imm] = b

	// Load fused into a following compare→branch: dst = mem[a + imm>>24],
	// then the compare (dst/a/b register indices in imm bits 16–23 / 8–15 /
	// 0–7) and the branch (count slot and target pc in aux, as all branches).
	uLdCmpEqBeq
	uLdCmpEqBne
	uLdCmpLtBeq
	uLdCmpLtBne
)

// chargePack packs a charge folded into a superinstruction into its aux
// field: segment length in bits 40+, reference-loop resume block index in
// bits 20–39, instruction index in bits 0–19. Returns false when any of the
// three exceeds 20 bits (the charge then stays unfused).
func chargePack(n, at int64) (int64, bool) {
	blk, insn := at>>32, at&0xFFFFFFFF
	if n >= 1<<20 || blk >= 1<<20 || insn >= 1<<20 {
		return 0, false
	}
	return n<<40 | blk<<20 | insn, true
}

// uimage is one function lowered to micro-ops.
type uimage struct {
	fn      *ir.Func
	code    []uop
	jmp     [][]int32 // indirect-jump tables, entries are code pcs
	errs    []error   // pre-built errors for uError/uFellOff
	blockID []int     // layout index → ir block ID (edge recording)
	blockPC []int32   // layout index → first code pc of the block
}

// buildUImages lowers every function of the program.
func (m *machine) buildUImages() {
	p := m.prog
	m.ufuncs = make([]*uimage, 0, len(p.Funcs))
	fidx := make(map[string]int, len(p.Funcs))
	for _, f := range p.Funcs {
		fidx[f.Name] = len(m.ufuncs)
		m.ufuncs = append(m.ufuncs, &uimage{fn: f})
	}
	for _, fi := range m.ufuncs {
		m.lowerFunc(fi, fidx)
	}
	if i, ok := fidx["main"]; ok {
		m.umain = m.ufuncs[i]
	}
}

// uopSize is the byte stride of the pointer-threaded dispatch walk.
const uopSize = unsafe.Sizeof(uop{})

// uadd advances a micro-op pointer by n slots.
func uadd(u *uop, n uintptr) *uop {
	return (*uop)(unsafe.Add(unsafe.Pointer(u), n*uopSize))
}

// uat resolves a code pc to a micro-op pointer relative to the stream base.
func uat(base unsafe.Pointer, pc uint32) *uop {
	return (*uop)(unsafe.Add(base, uintptr(pc)*uopSize))
}

// ufixup patches a branch/jump target once all block pcs are known: the low
// 32 bits of code[pc].aux receive blockPC[tgt].
type ufixup struct {
	pc  int32
	tgt int32
}

// rdst maps an instruction destination to a micro-op register index,
// redirecting the hardwired zero registers to the scratch slot.
func rdst(r ir.Reg) uint8 {
	if r.IsZero() {
		return scratchReg
	}
	return uint8(r)
}

// intALUOps is the 13-opcode integer ALU/compare group handled by the fused
// and immediate micro-op families; iwOf/immOf/regOf give the micro-op for
// each lowering form.
func isIntALU(op ir.Op) bool {
	switch op {
	case ir.OpAddQ, ir.OpSubQ, ir.OpMulQ, ir.OpDivQ, ir.OpRemQ,
		ir.OpAndQ, ir.OpOrQ, ir.OpXorQ, ir.OpSllQ, ir.OpSrlQ,
		ir.OpCmpEq, ir.OpCmpLt, ir.OpCmpLe:
		return true
	}
	return false
}

func aluUop(op ir.Op, base uint16) uint16 {
	var off uint16
	switch op {
	case ir.OpAddQ:
		off = 0
	case ir.OpSubQ:
		off = 1
	case ir.OpMulQ:
		off = 2
	case ir.OpDivQ:
		off = 3
	case ir.OpRemQ:
		off = 4
	case ir.OpAndQ:
		off = 5
	case ir.OpOrQ:
		off = 6
	case ir.OpXorQ:
		off = 7
	case ir.OpSllQ:
		off = 8
	case ir.OpSrlQ:
		off = 9
	case ir.OpCmpEq:
		off = 10
	case ir.OpCmpLt:
		off = 11
	case ir.OpCmpLe:
		off = 12
	default:
		panic("interp: aluUop on " + op.String())
	}
	return base + off
}

// fuseCmpBranch returns the fused micro-op for cmpOp (+imm form) followed by
// a Beq/Bne on its result, or 0 if the pair is not fusible.
func fuseCmpBranch(cmpOp ir.Op, useImm bool, brOp ir.Op) uint16 {
	var base uint16
	switch cmpOp {
	case ir.OpCmpEq:
		base = uCmpEqBeq
	case ir.OpCmpLt:
		base = uCmpLtBeq
	case ir.OpCmpLe:
		base = uCmpLeBeq
	default:
		return 0
	}
	if useImm {
		base += uCmpEqIBeq - uCmpEqBeq
	}
	if brOp == ir.OpBne {
		base++
	}
	return base
}

// blockEnd returns the index just past the last reachable instruction of the
// block: the reference loop leaves a block at its first terminator (or
// return), so anything after it is dead — never executed, never charged.
func blockEnd(insns []ir.Instr) int {
	for k := range insns {
		op := insns[k].Op
		if op.IsCondBranch() || op == ir.OpBr || op == ir.OpJmp || op == ir.OpRet {
			return k + 1
		}
	}
	return len(insns)
}

// fitsSigned reports whether v round-trips through a signed field of the
// given width (used when packing a second immediate into aux).
func fitsSigned(v int64, bits uint) bool {
	return v>>(bits-1) == 0 || v>>(bits-1) == -1
}

// mergeUops merges the previous micro-op p with the incoming n into one
// superinstruction when a rule applies. The rule set is the dynamically
// hottest adjacent pairs measured on the corpus profiling runs. Rules never
// take a charge or call as their *second* element (so block entries survive
// the lookback merge, see emit), and only the plain uCharge — never
// uChargeEdge, whose edge recording is per-dispatch — may be a *first*
// element. A branch may be a second element (its fixup is recorded against
// the pc emit returns, after the merge) but never a first one, so
// already-recorded fixup pcs stay valid.
func mergeUops(p *uop, n *uop) (uop, bool) {
	switch p.op {
	case uCharge:
		packed, ok := chargePack(p.imm, p.aux)
		if !ok {
			return uop{}, false
		}
		switch n.op {
		case uLd:
			return uop{op: uChargeLd, dst: n.dst, a: n.a, imm: n.imm, aux: packed}, true
		case uLda:
			return uop{op: uChargeLda, dst: n.dst, imm: n.aux, aux: packed}, true
		case uMov:
			return uop{op: uChargeMov, dst: n.dst, a: n.a, aux: packed}, true
		case uLdi:
			return uop{op: uChargeLdi, dst: n.dst, imm: n.imm, aux: packed}, true
		case uAddQ:
			return uop{op: uChargeAddQ, dst: n.dst, a: n.a, b: n.b, aux: packed}, true
		case uAddQI:
			return uop{op: uChargeAddQI, dst: n.dst, a: n.a, imm: n.imm, aux: packed}, true
		case uSt:
			return uop{op: uChargeSt, a: n.a, b: n.b, imm: n.imm, aux: packed}, true
		}
	case uLda:
		if n.op == uLd && n.a == p.dst {
			return uop{op: uLdaLd, dst: n.dst, a: p.dst, imm: n.imm, aux: p.aux}, true
		}
	case uLd:
		switch n.op {
		case uLda:
			if fitsSigned(n.aux, 56) {
				return uop{op: uLdLda, dst: p.dst, a: p.a, imm: p.imm,
					aux: n.aux<<8 | int64(n.dst)}, true
			}
		case uLd:
			if fitsSigned(n.imm, 56) {
				return uop{op: uLdLd, dst: p.dst, a: p.a, b: n.dst, imm: p.imm,
					aux: n.imm<<8 | int64(n.a)}, true
			}
		case uAddQ:
			return uop{op: uLdAddQ, dst: p.dst, a: p.a, imm: p.imm,
				aux: int64(n.dst) | int64(n.a)<<8 | int64(n.b)<<16}, true
		case uMulQ:
			return uop{op: uLdMulQ, dst: p.dst, a: p.a, imm: p.imm,
				aux: int64(n.dst) | int64(n.a)<<8 | int64(n.b)<<16}, true
		case uSt:
			if fitsSigned(n.imm, 48) {
				return uop{op: uLdSt, dst: p.dst, a: p.a, imm: p.imm,
					aux: n.imm<<16 | int64(n.a) | int64(n.b)<<8}, true
			}
		case uAddQI:
			if fitsSigned(n.imm, 48) {
				return uop{op: uLdAddQI, dst: p.dst, a: p.a, imm: p.imm,
					aux: n.imm<<16 | int64(n.dst) | int64(n.a)<<8}, true
			}
		case uCmpEqBeq, uCmpEqBne, uCmpLtBeq, uCmpLtBne:
			// The compare's registers move into imm's low 24 bits and the
			// load offset into the rest; aux keeps the branch packing so the
			// target-pc fixup (recorded against the pc emit returns) patches
			// the merged op like any other branch.
			if fitsSigned(p.imm, 40) {
				return uop{op: uLdCmpEqBeq + (n.op - uCmpEqBeq), dst: p.dst, a: p.a,
					imm: p.imm<<24 | int64(n.dst)<<16 | int64(n.a)<<8 | int64(n.b),
					aux: n.aux}, true
			}
		}
	case uAddQ:
		switch n.op {
		case uLd:
			if fitsSigned(n.imm, 48) {
				return uop{op: uAddQLd, dst: p.dst, a: p.a, b: p.b,
					aux: n.imm<<16 | int64(n.dst) | int64(n.a)<<8}, true
			}
		case uAddQ:
			return uop{op: uAddQAddQ, dst: p.dst, a: p.a, b: p.b,
				aux: int64(n.dst) | int64(n.a)<<8 | int64(n.b)<<16}, true
		}
	case uMulQ:
		if n.op == uLd && fitsSigned(n.imm, 48) {
			return uop{op: uMulQLd, dst: p.dst, a: p.a, b: p.b,
				aux: n.imm<<16 | int64(n.dst) | int64(n.a)<<8}, true
		}
	case uSt:
		switch n.op {
		case uLd:
			if fitsSigned(n.imm, 56) {
				return uop{op: uStLd, dst: n.dst, a: p.a, b: p.b, imm: p.imm,
					aux: n.imm<<8 | int64(n.a)}, true
			}
		case uLda:
			return uop{op: uStLda, dst: n.dst, a: p.a, b: p.b, imm: p.imm,
				aux: n.aux}, true
		case uSt:
			if fitsSigned(n.imm, 48) {
				return uop{op: uStSt, a: p.a, b: p.b, imm: p.imm,
					aux: n.imm<<16 | int64(n.a) | int64(n.b)<<8}, true
			}
		case uLdi:
			return uop{op: uStLdi, dst: n.dst, a: p.a, b: p.b, imm: p.imm,
				aux: n.imm}, true
		}
	case uAddQI:
		if n.op == uSt && fitsSigned(n.imm, 48) {
			return uop{op: uAddQISt, dst: p.dst, a: p.a, imm: p.imm,
				aux: n.imm<<16 | int64(n.a) | int64(n.b)<<8}, true
		}
	case uMov:
		if n.op == uMov {
			return uop{op: uMovMov, dst: p.dst, a: p.a, b: n.dst,
				aux: int64(n.a)}, true
		}
	case uLdi:
		if n.op == uSt && fitsSigned(n.imm, 48) {
			return uop{op: uLdiSt, dst: p.dst, imm: p.imm,
				aux: n.imm<<16 | int64(n.a) | int64(n.b)<<8}, true
		}
	}
	return uop{}, false
}

// lowerFunc lowers one function: segments, fusion, fallthrough threading,
// and a trailing fell-off-the-end guard.
func (m *machine) lowerFunc(fi *uimage, fidx map[string]int) {
	f := fi.fn
	edges := m.cfg.CollectEdges
	idToIdx := make(map[int]int, len(f.Blocks))
	fi.blockID = make([]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idToIdx[b.ID] = i
		fi.blockID[i] = b.ID
	}
	fi.blockPC = make([]int32, len(f.Blocks))
	var fixups []ufixup
	var jmpBlocks [][]int32 // jump-table entries as block indices, patched below

	// emit appends one micro-op, first trying to merge it into the previous
	// one as a superinstruction. A backward merge can never swallow a block
	// entry (every non-empty block begins with a charge, and no rule takes a
	// charge as its second element) or a fixup target (branches never appear
	// as a rule's first element, and when a branch merges as the *second*
	// element its fixup is recorded against the pc returned here), so
	// already-recorded blockPC values and fixup pcs stay valid.
	emit := func(u uop) int32 {
		if n := len(fi.code); n > 0 {
			if merged, ok := mergeUops(&fi.code[n-1], &u); ok {
				fi.code[n-1] = merged
				return int32(n - 1)
			}
		}
		fi.code = append(fi.code, u)
		return int32(len(fi.code) - 1)
	}
	mkerr := func(err error) int64 {
		fi.errs = append(fi.errs, err)
		return int64(len(fi.errs) - 1)
	}

	for bi := range f.Blocks {
		b := f.Blocks[bi]
		fi.blockPC[bi] = int32(len(fi.code))
		insns := b.Insns[:blockEnd(b.Insns)]
		segStart := 0
		for {
			segEnd := len(insns)
			for k := segStart; k < len(insns); k++ {
				if insns[k].Op == ir.OpBsr {
					segEnd = k + 1
					break
				}
			}
			segLen := int64(segEnd - segStart)
			if segStart == 0 && edges {
				// Block entry: record the incoming edge even when the block
				// is empty, then charge its first segment.
				emit(uop{op: uChargeEdge, imm: segLen, aux: int64(bi) << 32})
			} else if segLen > 0 {
				emit(uop{op: uCharge, imm: segLen, aux: int64(bi)<<32 | int64(segStart)})
			}

			k := segStart
			for k < segEnd {
				in := &insns[k]

				// Fused compare→conditional-branch. The compare destination
				// must be a real register: a zero-register destination would
				// be reset before the branch read it.
				if k+1 < segEnd && !in.Dst.IsZero() {
					nx := &insns[k+1]
					if (nx.Op == ir.OpBeq || nx.Op == ir.OpBne) && nx.A == in.Dst {
						if fop := fuseCmpBranch(in.Op, in.UseImm, nx.Op); fop != 0 {
							s := m.slot(ir.BranchRef{Func: f.Name, Block: b.ID})
							pc := emit(uop{op: fop, dst: uint8(in.Dst), a: uint8(in.A),
								b: uint8(in.B), imm: in.Imm, aux: int64(s) << 32})
							fixups = append(fixups, ufixup{pc: pc, tgt: int32(idToIdx[nx.Target])})
							k += 2
							continue
						}
					}
					// Fused load-immediate→ALU (immediate feeds the B operand).
					if in.Op == ir.OpLdiQ {
						if isIntALU(nx.Op) && !nx.UseImm && nx.B == in.Dst {
							emit(uop{op: aluUop(nx.Op, uAddQIW), dst: rdst(nx.Dst),
								a: uint8(nx.A), b: uint8(in.Dst), imm: in.Imm})
							k += 2
							continue
						}
					}
				}

				m.lowerInsn(fi, f, b, in, idToIdx, fidx, &fixups, &jmpBlocks, emit, mkerr)
				k++
			}
			if segEnd >= len(insns) {
				break
			}
			segStart = segEnd
		}
	}
	emit(uop{op: uFellOff,
		imm: mkerr(fmt.Errorf("interp: %s: control fell off the end", f.Name))})

	// Resolve block indices to code pcs now that every block has a pc.
	for _, fx := range fixups {
		fi.code[fx.pc].aux |= int64(uint32(fi.blockPC[fx.tgt]))
	}
	fi.jmp = make([][]int32, len(jmpBlocks))
	for i, tbl := range jmpBlocks {
		pcs := make([]int32, len(tbl))
		for j, blk := range tbl {
			pcs[j] = fi.blockPC[blk]
		}
		fi.jmp[i] = pcs
	}
}

// lowerInsn emits the micro-op(s) for one unfused instruction.
func (m *machine) lowerInsn(fi *uimage, f *ir.Func, b *ir.Block, in *ir.Instr,
	idToIdx map[int]int, fidx map[string]int,
	fixups *[]ufixup, jmpBlocks *[][]int32,
	emit func(uop) int32, mkerr func(error) int64) {

	switch {
	case isIntALU(in.Op):
		if in.UseImm {
			emit(uop{op: aluUop(in.Op, uAddQI), dst: rdst(in.Dst), a: uint8(in.A), imm: in.Imm})
		} else {
			emit(uop{op: aluUop(in.Op, uAddQ), dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
		}
	case in.Op == ir.OpLdiQ || in.Op == ir.OpLdiT:
		emit(uop{op: uLdi, dst: rdst(in.Dst), imm: in.Imm})
	case in.Op == ir.OpLda:
		if base, ok := m.globals[in.Sym]; ok {
			emit(uop{op: uLda, dst: rdst(in.Dst), aux: base + in.Imm})
		} else {
			emit(uop{op: uError, imm: mkerr(fmt.Errorf("interp: unknown global %q", in.Sym))})
		}
	case in.Op == ir.OpMov || in.Op == ir.OpFMov:
		emit(uop{op: uMov, dst: rdst(in.Dst), a: uint8(in.A)})
	case in.Op == ir.OpCmovEq:
		emit(uop{op: uCmovEq, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpCmovNe:
		emit(uop{op: uCmovNe, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpFCmovEq:
		emit(uop{op: uFCmovEq, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpFCmovNe:
		emit(uop{op: uFCmovNe, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpLdq || in.Op == ir.OpLdt:
		emit(uop{op: uLd, dst: rdst(in.Dst), a: uint8(in.A), imm: in.Imm})
	case in.Op == ir.OpStq || in.Op == ir.OpStt:
		emit(uop{op: uSt, a: uint8(in.A), b: uint8(in.B), imm: in.Imm})
	case in.Op == ir.OpAddT:
		emit(uop{op: uAddT, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpSubT:
		emit(uop{op: uSubT, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpMulT:
		emit(uop{op: uMulT, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpDivT:
		emit(uop{op: uDivT, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpFAbs:
		emit(uop{op: uFAbs, dst: rdst(in.Dst), a: uint8(in.A)})
	case in.Op == ir.OpFNeg:
		emit(uop{op: uFNeg, dst: rdst(in.Dst), a: uint8(in.A)})
	case in.Op == ir.OpCvtQT:
		emit(uop{op: uCvtQT, dst: rdst(in.Dst), a: uint8(in.A)})
	case in.Op == ir.OpCvtTQ:
		emit(uop{op: uCvtTQ, dst: rdst(in.Dst), a: uint8(in.A)})
	case in.Op == ir.OpCmpTEq:
		emit(uop{op: uCmpTEq, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpCmpTLt:
		emit(uop{op: uCmpTLt, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op == ir.OpCmpTLe:
		emit(uop{op: uCmpTLe, dst: rdst(in.Dst), a: uint8(in.A), b: uint8(in.B)})
	case in.Op.IsCondBranch():
		var bop uint16
		switch in.Op {
		case ir.OpBeq:
			bop = uBeq
		case ir.OpBne:
			bop = uBne
		case ir.OpBlt:
			bop = uBlt
		case ir.OpBle:
			bop = uBle
		case ir.OpBgt:
			bop = uBgt
		case ir.OpBge:
			bop = uBge
		case ir.OpFbeq:
			bop = uFbeq
		case ir.OpFbne:
			bop = uFbne
		case ir.OpFblt:
			bop = uFblt
		case ir.OpFble:
			bop = uFble
		case ir.OpFbgt:
			bop = uFbgt
		case ir.OpFbge:
			bop = uFbge
		case ir.OpBeq2:
			bop = uBeq2
		case ir.OpBne2:
			bop = uBne2
		default:
			emit(uop{op: uError, imm: mkerr(fmt.Errorf("interp: unimplemented opcode %s", in.Op))})
			return
		}
		s := m.slot(ir.BranchRef{Func: f.Name, Block: b.ID})
		pc := emit(uop{op: bop, a: uint8(in.A), b: uint8(in.B), aux: int64(s) << 32})
		*fixups = append(*fixups, ufixup{pc: pc, tgt: int32(idToIdx[in.Target])})
	case in.Op == ir.OpBr:
		pc := emit(uop{op: uBr})
		*fixups = append(*fixups, ufixup{pc: pc, tgt: int32(idToIdx[in.Target])})
	case in.Op == ir.OpJmp:
		tbl := make([]int32, len(in.Targets))
		for i, id := range in.Targets {
			tbl[i] = int32(idToIdx[id])
		}
		emit(uop{op: uJmp, a: uint8(in.A), imm: int64(len(*jmpBlocks))})
		*jmpBlocks = append(*jmpBlocks, tbl)
	case in.Op == ir.OpBsr:
		if ci, ok := fidx[in.Sym]; ok {
			emit(uop{op: uBsr, aux: int64(ci)})
		} else {
			emit(uop{op: uError, imm: mkerr(fmt.Errorf("interp: call to unknown function %q", in.Sym))})
		}
	case in.Op == ir.OpRet:
		emit(uop{op: uRet})
	case in.Op == ir.OpRtcall:
		emit(uop{op: uRtcall, imm: in.Imm})
	default:
		emit(uop{op: uError, imm: mkerr(fmt.Errorf("interp: unimplemented opcode %s", in.Op))})
	}
}

// callU executes one function activation over the micro-op stream. The
// budget checks (call depth, then stack) mirror call exactly. The depth
// counter is decremented only on the successful-return path because every
// error propagates straight out of Run and discards the machine (the
// reference path's deferred decrement is equally unobservable there).
func (m *machine) callU(fi *uimage, args [12]int64, sp int64) (retInt int64, retFloat int64, err error) {
	if m.depth++; m.depth > m.cfg.MaxCallDepth {
		return 0, 0, ErrCallDepth
	}
	var regs [numURegs]int64
	for i := 0; i < 6; i++ {
		regs[int(ir.RegA0)+i] = args[i]
		regs[int(ir.RegFA0)+i] = args[6+i]
	}
	sp -= fi.fn.FrameSize
	if sp < m.heapTop {
		return 0, 0, ErrStack
	}
	regs[ir.RegSP] = sp
	m.prof.Calls[fi.fn.Name]++

	mem := m.mem
	counts := m.counts
	trace := m.trace // nil in production; one predictable branch per site
	prevBlk := -1
	fuel := m.fuel // kept in a register; flushed to m.fuel at calls and return

	// Dispatch is pointer-threaded: u walks the code array directly and
	// branch targets are rebased from its start, so a dispatch costs neither
	// a bounds check nor index scaling. This is safe by construction: every
	// lowered stream is closed (each function ends with a returning uFellOff,
	// every fallthrough lands on the next emitted op, and every branch/jump
	// target is a blockPC inside the same stream), so u can never leave
	// fi.code.
	base := unsafe.Pointer(unsafe.SliceData(fi.code))
	u := (*uop)(base)
	for {
		switch u.op {
		case uCharge:
			if fuel < u.imm {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>32), int(int32(uint32(u.aux))), &regs, sp)
			}
			fuel -= u.imm
			u = uadd(u, 1)
		case uChargeEdge:
			bi := int(u.aux >> 32)
			if prevBlk >= 0 {
				m.prof.Edges[EdgeRef{Func: fi.fn.Name,
					From: fi.blockID[prevBlk], To: fi.blockID[bi]}]++
			}
			prevBlk = bi
			if fuel < u.imm {
				m.fuel = fuel
				return m.refTail(fi, bi, 0, &regs, sp)
			}
			fuel -= u.imm
			u = uadd(u, 1)
		case uLdi:
			regs[u.dst] = u.imm
			u = uadd(u, 1)
		case uLda:
			regs[u.dst] = u.aux
			u = uadd(u, 1)
		case uMov:
			regs[u.dst] = regs[u.a]
			u = uadd(u, 1)
		case uCmovEq:
			if regs[u.a] == 0 {
				regs[u.dst] = regs[u.b]
			}
			u = uadd(u, 1)
		case uCmovNe:
			if regs[u.a] != 0 {
				regs[u.dst] = regs[u.b]
			}
			u = uadd(u, 1)
		case uFCmovEq:
			if math.Float64frombits(uint64(regs[u.a])) == 0 {
				regs[u.dst] = regs[u.b]
			}
			u = uadd(u, 1)
		case uFCmovNe:
			if math.Float64frombits(uint64(regs[u.a])) != 0 {
				regs[u.dst] = regs[u.b]
			}
			u = uadd(u, 1)
		case uLd:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			u = uadd(u, 1)
		case uSt:
			addr := regs[u.a] + u.imm
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[u.b]
			m.dirty(addr)
			u = uadd(u, 1)

		case uAddQ:
			regs[u.dst] = regs[u.a] + regs[u.b]
			u = uadd(u, 1)
		case uSubQ:
			regs[u.dst] = regs[u.a] - regs[u.b]
			u = uadd(u, 1)
		case uMulQ:
			regs[u.dst] = regs[u.a] * regs[u.b]
			u = uadd(u, 1)
		case uDivQ:
			d := regs[u.b]
			if d == 0 {
				return 0, 0, ErrDivZero
			}
			regs[u.dst] = regs[u.a] / d
			u = uadd(u, 1)
		case uRemQ:
			d := regs[u.b]
			if d == 0 {
				return 0, 0, ErrDivZero
			}
			regs[u.dst] = regs[u.a] % d
			u = uadd(u, 1)
		case uAndQ:
			regs[u.dst] = regs[u.a] & regs[u.b]
			u = uadd(u, 1)
		case uOrQ:
			regs[u.dst] = regs[u.a] | regs[u.b]
			u = uadd(u, 1)
		case uXorQ:
			regs[u.dst] = regs[u.a] ^ regs[u.b]
			u = uadd(u, 1)
		case uSllQ:
			regs[u.dst] = regs[u.a] << (uint64(regs[u.b]) & 63)
			u = uadd(u, 1)
		case uSrlQ:
			regs[u.dst] = int64(uint64(regs[u.a]) >> (uint64(regs[u.b]) & 63))
			u = uadd(u, 1)
		case uCmpEq:
			var v int64
			if regs[u.a] == regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)
		case uCmpLt:
			var v int64
			if regs[u.a] < regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)
		case uCmpLe:
			var v int64
			if regs[u.a] <= regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)

		case uAddQI:
			regs[u.dst] = regs[u.a] + u.imm
			u = uadd(u, 1)
		case uSubQI:
			regs[u.dst] = regs[u.a] - u.imm
			u = uadd(u, 1)
		case uMulQI:
			regs[u.dst] = regs[u.a] * u.imm
			u = uadd(u, 1)
		case uDivQI:
			if u.imm == 0 {
				return 0, 0, ErrDivZero
			}
			regs[u.dst] = regs[u.a] / u.imm
			u = uadd(u, 1)
		case uRemQI:
			if u.imm == 0 {
				return 0, 0, ErrDivZero
			}
			regs[u.dst] = regs[u.a] % u.imm
			u = uadd(u, 1)
		case uAndQI:
			regs[u.dst] = regs[u.a] & u.imm
			u = uadd(u, 1)
		case uOrQI:
			regs[u.dst] = regs[u.a] | u.imm
			u = uadd(u, 1)
		case uXorQI:
			regs[u.dst] = regs[u.a] ^ u.imm
			u = uadd(u, 1)
		case uSllQI:
			regs[u.dst] = regs[u.a] << (uint64(u.imm) & 63)
			u = uadd(u, 1)
		case uSrlQI:
			regs[u.dst] = int64(uint64(regs[u.a]) >> (uint64(u.imm) & 63))
			u = uadd(u, 1)
		case uCmpEqI:
			var v int64
			if regs[u.a] == u.imm {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)
		case uCmpLtI:
			var v int64
			if regs[u.a] < u.imm {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)
		case uCmpLeI:
			var v int64
			if regs[u.a] <= u.imm {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)

		case uAddQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] + u.imm
			u = uadd(u, 1)
		case uSubQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] - u.imm
			u = uadd(u, 1)
		case uMulQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] * u.imm
			u = uadd(u, 1)
		case uDivQIW:
			regs[u.b] = u.imm
			if u.imm == 0 {
				return 0, 0, ErrDivZero
			}
			regs[u.dst] = regs[u.a] / u.imm
			u = uadd(u, 1)
		case uRemQIW:
			regs[u.b] = u.imm
			if u.imm == 0 {
				return 0, 0, ErrDivZero
			}
			regs[u.dst] = regs[u.a] % u.imm
			u = uadd(u, 1)
		case uAndQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] & u.imm
			u = uadd(u, 1)
		case uOrQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] | u.imm
			u = uadd(u, 1)
		case uXorQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] ^ u.imm
			u = uadd(u, 1)
		case uSllQIW:
			regs[u.b] = u.imm
			regs[u.dst] = regs[u.a] << (uint64(u.imm) & 63)
			u = uadd(u, 1)
		case uSrlQIW:
			regs[u.b] = u.imm
			regs[u.dst] = int64(uint64(regs[u.a]) >> (uint64(u.imm) & 63))
			u = uadd(u, 1)
		case uCmpEqIW:
			regs[u.b] = u.imm
			var v int64
			if regs[u.a] == u.imm {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)
		case uCmpLtIW:
			regs[u.b] = u.imm
			var v int64
			if regs[u.a] < u.imm {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)
		case uCmpLeIW:
			regs[u.b] = u.imm
			var v int64
			if regs[u.a] <= u.imm {
				v = 1
			}
			regs[u.dst] = v
			u = uadd(u, 1)

		case uAddT:
			regs[u.dst] = int64(math.Float64bits(
				math.Float64frombits(uint64(regs[u.a])) + math.Float64frombits(uint64(regs[u.b]))))
			u = uadd(u, 1)
		case uSubT:
			regs[u.dst] = int64(math.Float64bits(
				math.Float64frombits(uint64(regs[u.a])) - math.Float64frombits(uint64(regs[u.b]))))
			u = uadd(u, 1)
		case uMulT:
			regs[u.dst] = int64(math.Float64bits(
				math.Float64frombits(uint64(regs[u.a])) * math.Float64frombits(uint64(regs[u.b]))))
			u = uadd(u, 1)
		case uDivT:
			regs[u.dst] = int64(math.Float64bits(
				math.Float64frombits(uint64(regs[u.a])) / math.Float64frombits(uint64(regs[u.b]))))
			u = uadd(u, 1)
		case uFAbs:
			regs[u.dst] = int64(math.Float64bits(math.Abs(math.Float64frombits(uint64(regs[u.a])))))
			u = uadd(u, 1)
		case uFNeg:
			regs[u.dst] = int64(math.Float64bits(-math.Float64frombits(uint64(regs[u.a]))))
			u = uadd(u, 1)
		case uCvtQT:
			regs[u.dst] = int64(math.Float64bits(float64(regs[u.a])))
			u = uadd(u, 1)
		case uCvtTQ:
			regs[u.dst] = int64(math.Float64frombits(uint64(regs[u.a])))
			u = uadd(u, 1)
		case uCmpTEq:
			r := 0.0
			if math.Float64frombits(uint64(regs[u.a])) == math.Float64frombits(uint64(regs[u.b])) {
				r = 1.0
			}
			regs[u.dst] = int64(math.Float64bits(r))
			u = uadd(u, 1)
		case uCmpTLt:
			r := 0.0
			if math.Float64frombits(uint64(regs[u.a])) < math.Float64frombits(uint64(regs[u.b])) {
				r = 1.0
			}
			regs[u.dst] = int64(math.Float64bits(r))
			u = uadd(u, 1)
		case uCmpTLe:
			r := 0.0
			if math.Float64frombits(uint64(regs[u.a])) <= math.Float64frombits(uint64(regs[u.b])) {
				r = 1.0
			}
			regs[u.dst] = int64(math.Float64bits(r))
			u = uadd(u, 1)

		case uBeq:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBne:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBlt:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] < 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBle:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] <= 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBgt:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] > 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBge:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] >= 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uFbeq:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if math.Float64frombits(uint64(regs[u.a])) == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uFbne:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if math.Float64frombits(uint64(regs[u.a])) != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uFblt:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if math.Float64frombits(uint64(regs[u.a])) < 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uFble:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if math.Float64frombits(uint64(regs[u.a])) <= 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uFbgt:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if math.Float64frombits(uint64(regs[u.a])) > 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uFbge:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if math.Float64frombits(uint64(regs[u.a])) >= 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBeq2:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] == regs[u.b] {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uBne2:
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if regs[u.a] != regs[u.b] {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}

		case uCmpEqBeq:
			var v int64
			if regs[u.a] == regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpEqBne:
			var v int64
			if regs[u.a] == regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLtBeq:
			var v int64
			if regs[u.a] < regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLtBne:
			var v int64
			if regs[u.a] < regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLeBeq:
			var v int64
			if regs[u.a] <= regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLeBne:
			var v int64
			if regs[u.a] <= regs[u.b] {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpEqIBeq:
			var v int64
			if regs[u.a] == u.imm {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpEqIBne:
			var v int64
			if regs[u.a] == u.imm {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLtIBeq:
			var v int64
			if regs[u.a] < u.imm {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLtIBne:
			var v int64
			if regs[u.a] < u.imm {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLeIBeq:
			var v int64
			if regs[u.a] <= u.imm {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uCmpLeIBne:
			var v int64
			if regs[u.a] <= u.imm {
				v = 1
			}
			regs[u.dst] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}

		case uChargeLd:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			u = uadd(u, 1)
		case uChargeLda:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			regs[u.dst] = u.imm
			u = uadd(u, 1)
		case uLdaLd:
			regs[u.a] = u.aux
			addr := u.aux + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			u = uadd(u, 1)
		case uLdLda:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			regs[uint8(u.aux)] = u.aux >> 8
			u = uadd(u, 1)
		case uLdLd:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			addr = regs[uint8(u.aux)] + u.aux>>8
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.b] = mem[addr]
			u = uadd(u, 1)
		case uLdAddQ:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			x := u.aux
			regs[uint8(x)] = regs[uint8(x>>8)] + regs[uint8(x>>16)]
			u = uadd(u, 1)
		case uLdMulQ:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			x := u.aux
			regs[uint8(x)] = regs[uint8(x>>8)] * regs[uint8(x>>16)]
			u = uadd(u, 1)
		case uAddQLd:
			regs[u.dst] = regs[u.a] + regs[u.b]
			x := u.aux
			addr := regs[uint8(x>>8)] + x>>16
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[uint8(x)] = mem[addr]
			u = uadd(u, 1)
		case uMulQLd:
			regs[u.dst] = regs[u.a] * regs[u.b]
			x := u.aux
			addr := regs[uint8(x>>8)] + x>>16
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[uint8(x)] = mem[addr]
			u = uadd(u, 1)
		case uLdSt:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			x := u.aux
			addr = regs[uint8(x)] + x>>16
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[uint8(x>>8)]
			m.dirty(addr)
			u = uadd(u, 1)
		case uStLd:
			addr := regs[u.a] + u.imm
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[u.b]
			m.dirty(addr)
			addr = regs[uint8(u.aux)] + u.aux>>8
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			u = uadd(u, 1)
		case uStLda:
			addr := regs[u.a] + u.imm
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[u.b]
			m.dirty(addr)
			regs[u.dst] = u.aux
			u = uadd(u, 1)
		case uAddQAddQ:
			regs[u.dst] = regs[u.a] + regs[u.b]
			x := u.aux
			regs[uint8(x)] = regs[uint8(x>>8)] + regs[uint8(x>>16)]
			u = uadd(u, 1)
		case uLdAddQI:
			addr := regs[u.a] + u.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			x := u.aux
			regs[uint8(x)] = regs[uint8(x>>8)] + x>>16
			u = uadd(u, 1)
		case uAddQISt:
			regs[u.dst] = regs[u.a] + u.imm
			x := u.aux
			addr := regs[uint8(x)] + x>>16
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[uint8(x>>8)]
			m.dirty(addr)
			u = uadd(u, 1)
		case uMovMov:
			regs[u.dst] = regs[u.a]
			regs[u.b] = regs[uint8(u.aux)]
			u = uadd(u, 1)
		case uStSt:
			addr := regs[u.a] + u.imm
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[u.b]
			m.dirty(addr)
			x := u.aux
			addr = regs[uint8(x)] + x>>16
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[uint8(x>>8)]
			m.dirty(addr)
			u = uadd(u, 1)
		case uLdiSt:
			regs[u.dst] = u.imm
			x := u.aux
			addr := regs[uint8(x)] + x>>16
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[uint8(x>>8)]
			m.dirty(addr)
			u = uadd(u, 1)
		case uStLdi:
			addr := regs[u.a] + u.imm
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[u.b]
			m.dirty(addr)
			regs[u.dst] = u.aux
			u = uadd(u, 1)

		case uChargeMov:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			regs[u.dst] = regs[u.a]
			u = uadd(u, 1)
		case uChargeLdi:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			regs[u.dst] = u.imm
			u = uadd(u, 1)
		case uChargeAddQ:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			regs[u.dst] = regs[u.a] + regs[u.b]
			u = uadd(u, 1)
		case uChargeAddQI:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			regs[u.dst] = regs[u.a] + u.imm
			u = uadd(u, 1)
		case uChargeSt:
			if fuel < u.aux>>40 {
				m.fuel = fuel
				return m.refTail(fi, int(u.aux>>20)&0xFFFFF, int(u.aux)&0xFFFFF, &regs, sp)
			}
			fuel -= u.aux >> 40
			addr := regs[u.a] + u.imm
			if uint64(addr-1) >= uint64(len(mem))-1 {
				return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			mem[addr] = regs[u.b]
			m.dirty(addr)
			u = uadd(u, 1)

		case uLdCmpEqBeq:
			addr := regs[u.a] + u.imm>>24
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			var v int64
			if regs[uint8(u.imm>>8)] == regs[uint8(u.imm)] {
				v = 1
			}
			regs[uint8(u.imm>>16)] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uLdCmpEqBne:
			addr := regs[u.a] + u.imm>>24
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			var v int64
			if regs[uint8(u.imm>>8)] == regs[uint8(u.imm)] {
				v = 1
			}
			regs[uint8(u.imm>>16)] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uLdCmpLtBeq:
			addr := regs[u.a] + u.imm>>24
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			var v int64
			if regs[uint8(u.imm>>8)] < regs[uint8(u.imm)] {
				v = 1
			}
			regs[uint8(u.imm>>16)] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v == 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}
		case uLdCmpLtBne:
			addr := regs[u.a] + u.imm>>24
			if uint64(addr) >= uint64(len(mem)) {
				return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fi.fn.Name)
			}
			regs[u.dst] = mem[addr]
			var v int64
			if regs[uint8(u.imm>>8)] < regs[uint8(u.imm)] {
				v = 1
			}
			regs[uint8(u.imm>>16)] = v
			bc := &counts[int32(u.aux>>32)]
			bc.Executed++
			if v != 0 {
				bc.Taken++
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), true)
				}
				u = uat(base, uint32(u.aux))
			} else {
				if trace != nil {
					trace.TraceBranch(int32(u.aux>>32), false)
				}
				u = uadd(u, 1)
			}

		case uBr:
			u = uat(base, uint32(u.aux))
		case uJmp:
			tgts := fi.jmp[u.imm]
			idx := regs[u.a]
			if idx < 0 || idx >= int64(len(tgts)) {
				return 0, 0, ErrBadJump
			}
			u = uat(base, uint32(tgts[idx]))
		case uBsr:
			callee := m.ufuncs[u.aux]
			var cargs [12]int64
			for i := 0; i < 6; i++ {
				cargs[i] = regs[int(ir.RegA0)+i]
				cargs[6+i] = regs[int(ir.RegFA0)+i]
			}
			m.fuel = fuel
			ri, rf, cerr := m.callU(callee, cargs, sp)
			if cerr != nil {
				return 0, 0, cerr
			}
			fuel = m.fuel
			regs[ir.RegV0] = ri
			regs[ir.RegFV0] = rf
			u = uadd(u, 1)
		case uRet:
			m.depth--
			m.fuel = fuel
			return regs[ir.RegV0], regs[ir.RegFV0], nil
		case uRtcall:
			if rerr := m.runtime(u.imm, regs[:ir.NumRegs]); rerr != nil {
				return 0, 0, rerr
			}
			u = uadd(u, 1)
		case uError, uFellOff:
			return 0, 0, fi.errs[u.imm]
		default:
			return 0, 0, fmt.Errorf("interp: bad micro-op %d", u.op)
		}
	}
}

// refTail finishes the current activation on the reference interpreter,
// entering it at the original (block, instruction) coordinates of a fuel
// charge that could not be covered. The activation's depth increment and
// stack reservation already happened in callU, so the reference loop is
// entered directly rather than through call.
func (m *machine) refTail(fi *uimage, blockIdx, startPC int, regs *[numURegs]int64, sp int64) (int64, int64, error) {
	m.buildImages()
	rfi := m.funcs[fi.fn.Name]
	var r [ir.NumRegs]int64
	copy(r[:], regs[:ir.NumRegs])
	return m.refLoop(rfi, &r, sp, blockIdx, startPC)
}
