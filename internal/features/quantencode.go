package features

import (
	"fmt"
	"math"

	"repro/internal/neural"
)

// QuantEncoder is the int8 twin of Encoder, built for the serving hot path.
//
// The float encoder computes (x − mean)/std per column on every request.
// But a categorical feature can only take a handful of shapes: one of its
// vocabulary values, an unseen value, or the gated "?" — and each shape
// produces a fixed block of normalized activations. Under a fixed input
// scale those blocks quantize to fixed int8 patterns, so this encoder
// precomputes every (feature, value) block once and turns per-request
// encoding into a memset plus ~25 small int8 copies: no float math, no
// rounding, no allocation.
//
// For every vector, Encode produces exactly the bytes
// neural.QuantNet.QuantizeInput would produce from Encoder.Encode's float
// output — asserted column-for-column by the equivalence test.
type QuantEncoder struct {
	dim    int
	xscale float64
	// offsets/widths mirror the float encoder's block layout.
	offsets [NumFeatures]int
	widths  [NumFeatures]int
	// known maps each in-vocabulary value to its precomputed block.
	known [NumFeatures]map[string][]int8
	// unseen is the block for a value outside the vocabulary (zero activity
	// on every column: x = 0 everywhere, normalized).
	unseen [NumFeatures][]int8
}

// NewQuantEncoder precomputes the quantized block table for a trained float
// encoder under the given input scale (qx = clamp(round(x·xscale), ±127)).
func NewQuantEncoder(e *Encoder, xscale float64) (*QuantEncoder, error) {
	if e == nil {
		return nil, fmt.Errorf("features: NewQuantEncoder: nil encoder")
	}
	if xscale <= 0 || math.IsInf(xscale, 0) || math.IsNaN(xscale) {
		return nil, fmt.Errorf("features: NewQuantEncoder: bad xscale %v", xscale)
	}
	q := &QuantEncoder{dim: e.Dim, xscale: xscale}
	step := 1 / xscale // matches neural.QuantNet.QuantizeInput exactly
	quantCol := func(i int, x float64) int8 {
		if e.Std[i] == 0 {
			return 0
		}
		return neural.QuantizeSym((x-e.Mean[i])/e.Std[i], step)
	}
	for f := 0; f < NumFeatures; f++ {
		lo := e.Offsets[f]
		w := len(e.Vocab[f])
		q.offsets[f] = lo
		q.widths[f] = w
		q.unseen[f] = make([]int8, w)
		for i := 0; i < w; i++ {
			q.unseen[f][i] = quantCol(lo+i, 0)
		}
		q.known[f] = make(map[string][]int8, w)
		for vi, val := range e.Vocab[f] {
			block := make([]int8, w)
			for i := 0; i < w; i++ {
				x := 0.0
				if i == vi {
					x = 1
				}
				block[i] = quantCol(lo+i, x)
			}
			q.known[f][val] = block
		}
	}
	return q, nil
}

// Dim is the encoded row width (the float encoder's Dim).
func (q *QuantEncoder) Dim() int { return q.dim }

// XScale is the input quantization scale the table was built for.
func (q *QuantEncoder) XScale() float64 { return q.xscale }

// FeatureSpan returns feature f's column range in the encoded row.
func (q *QuantEncoder) FeatureSpan(f int) (offset, width int) {
	return q.offsets[f], q.widths[f]
}

// KnownBlocks returns feature f's precomputed per-value blocks. The map and
// its blocks are shared state: read-only for callers (core folds them into
// its fused serving tables).
func (q *QuantEncoder) KnownBlocks(f int) map[string][]int8 { return q.known[f] }

// UnseenBlock returns feature f's block for an out-of-vocabulary value.
// Read-only for callers.
func (q *QuantEncoder) UnseenBlock(f int) []int8 { return q.unseen[f] }

// Encode writes the quantized input row for v into dst, which must have
// length Dim. It allocates nothing: gated ("?") features leave their block
// zero, every other feature copies a precomputed int8 block. v is a pointer
// purely for speed — a Vector is 25 string headers, too big to copy on a
// hot path — and is not modified.
func (q *QuantEncoder) Encode(v *Vector, dst []int8) {
	if len(dst) != q.dim {
		panic(fmt.Sprintf("features: QuantEncoder.Encode dst length %d, want %d", len(dst), q.dim))
	}
	for i := range dst {
		dst[i] = 0
	}
	for f, val := range v.Values {
		if val == Unknown || val == "" {
			continue
		}
		block, ok := q.known[f][val]
		if !ok {
			block = q.unseen[f]
		}
		copy(dst[q.offsets[f]:q.offsets[f]+q.widths[f]], block)
	}
}

// MaxAbsActivation returns the largest activation magnitude the float
// encoder can produce on any column — the calibration sweep's reference
// range. Columns are Bernoulli(p) normalized to (x−p)/√(p(1−p)), so the
// extreme is reached by a rare value's hit: (1−p)/√(p(1−p)).
func (e *Encoder) MaxAbsActivation() float64 {
	var m float64
	for i := range e.Mean {
		if e.Std[i] == 0 {
			continue
		}
		lo := math.Abs(0-e.Mean[i]) / e.Std[i]
		hi := math.Abs(1-e.Mean[i]) / e.Std[i]
		if lo > m {
			m = lo
		}
		if hi > m {
			m = hi
		}
	}
	return m
}
