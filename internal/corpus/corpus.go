// Package corpus holds the benchmark programs of the study: a MinC analog
// for each of the 43 C and Fortran programs the paper instrumented (the
// SPEC92 suites, the Perfect Club suite, and the miscellaneous Unix tools of
// "Other C"), plus the three Scheme-style programs of the Section 3.1.2
// language study.
//
// The originals are proprietary (SPEC92 licensing, DEC compilers, Alpha
// binaries), so each entry is a from-scratch program written to match its
// namesake's *branch character*: the approximate fraction of taken branches,
// how concentrated dynamic branches are over static sites (the Q-50…Q-100
// quantiles of Table 3), the loop/non-loop mix, and the idioms the paper's
// heuristics key on (pointer-null scans, convergence tests that almost never
// fire, store/call successors, recursion-as-iteration for the Scheme
// programs). Absolute instruction counts are necessarily far smaller than
// the paper's multi-billion-instruction traces.
package corpus

import (
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Suite identifies the benchmark suite a program belongs to, matching the
// grouping of Tables 3 and 4.
type Suite string

// Suites.
const (
	SuiteOtherC      Suite = "Other C"
	SuiteSPECC       Suite = "SPEC C"
	SuiteSPECFortran Suite = "SPEC Fortran"
	SuitePerfectClub Suite = "Perf Club"
	SuiteScheme      Suite = "Scheme"
	// SuiteGenerated tags synthetic programs from a corpus Source (the
	// gencorpus generator); they are never part of the registry, so the
	// paper's tables keep their exact 43+3 program set.
	SuiteGenerated Suite = "Generated"
)

// Source supplies corpus entries from somewhere other than the built-in
// registry — the seam through which generated workloads flow into the
// exact parse -> compile -> trace -> featurize -> train pipeline the real
// programs use. Implementations must be deterministic: the same Source
// value yields the same entries, in the same order, on every call.
type Source interface {
	Entries() []Entry
}

// Entry is one corpus program.
type Entry struct {
	// Name matches the paper's program name (lower case as printed).
	Name string
	// Suite is the Table 3/4 grouping.
	Suite Suite
	// Language tags the dialect: LangC for the C suites, LangFortran for
	// the Fortran suites, LangScheme for the Section 3.1.2 programs.
	Language ir.Language
	// Source is the MinC program text.
	Source string
	// Input is the program's input vector (served by __input).
	Input []int64
	// Seed seeds the deterministic __rand stream.
	Seed uint64
	// About describes what the analog models.
	About string
}

var registry []Entry

func register(e Entry) {
	registry = append(registry, e)
}

// All returns every corpus entry: the 43 C and Fortran programs in the
// paper's presentation order (Other C, SPEC C, SPEC Fortran, Perfect Club)
// followed by the three Scheme programs.
func All() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return suiteOrder(out[i].Suite) < suiteOrder(out[j].Suite)
		}
		return false // keep registration order within a suite
	})
	return out
}

func suiteOrder(s Suite) int {
	switch s {
	case SuiteOtherC:
		return 0
	case SuiteSPECC:
		return 1
	case SuiteSPECFortran:
		return 2
	case SuitePerfectClub:
		return 3
	case SuiteScheme:
		return 4
	}
	return 5
}

// Study returns the 43 C and Fortran programs (the paper's main corpus,
// excluding the Scheme study programs).
func Study() []Entry {
	var out []Entry
	for _, e := range All() {
		if e.Suite != SuiteScheme {
			out = append(out, e)
		}
	}
	return out
}

// BySuite returns the programs of one suite in order.
func BySuite(s Suite) []Entry {
	var out []Entry
	for _, e := range All() {
		if e.Suite == s {
			out = append(out, e)
		}
	}
	return out
}

// ByLanguage returns the study programs with the given language tag — the
// paper's cross-validation groups (23 C, 20 Fortran).
func ByLanguage(lang ir.Language) []Entry {
	var out []Entry
	for _, e := range Study() {
		if e.Language == lang {
			out = append(out, e)
		}
	}
	return out
}

// ByName looks an entry up.
func ByName(name string) (Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Parse parses the entry's source linked against the MinC runtime library
// (StdlibSource), mirroring how the paper's binaries carried the native OS
// libraries. Callers that compile the same entry for several targets (the
// pgo pipeline, the guided-optimization study) parse once and reuse the AST.
func (e Entry) Parse() (*minic.Program, error) {
	ast, err := minic.Parse(e.Name, e.Source+StdlibSource+Stdlib2Source)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", e.Name, err)
	}
	return ast, nil
}

// Compile parses and compiles the entry for a target.
func (e Entry) Compile(tgt codegen.Target) (*ir.Program, error) {
	ast, err := e.Parse()
	if err != nil {
		return nil, err
	}
	prog, err := codegen.Compile(ast, e.Language, tgt)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", e.Name, err)
	}
	return prog, nil
}

// RunConfig is the standard interpreter configuration for the entry.
func (e Entry) RunConfig() interp.Config {
	return interp.Config{Input: e.Input, Seed: e.Seed}
}
