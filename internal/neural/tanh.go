package neural

import (
	"math"
	"sync"
)

// tanhApprox is the quantized path's tanh: a 2048-bucket linear
// interpolation over [0, 8), clamped to ±1 outside. Max error ≈ 1.5e-6 —
// three orders of magnitude below the quantization noise the calibration
// sweep already absorbs, and an order of magnitude faster than math.Tanh,
// which otherwise dominates the int8 forward pass.
//
// The approximation is part of the quantized model's definition: the
// calibration sweep measures decision flips with this exact function, so
// serving must use it too (see QuantNet.Forward / ForwardAcc). The float64
// reference path keeps math.Tanh untouched.

const (
	tanhBuckets = 2048
	tanhMax     = 8.0 // tanh(8) is within 2.3e-7 of 1
	tanhScale   = tanhBuckets / tanhMax
)

var (
	tanhOnce  sync.Once
	tanhTable [tanhBuckets + 1]float64
)

func tanhApprox(x float64) float64 {
	tanhOnce.Do(func() {
		for i := range tanhTable {
			tanhTable[i] = math.Tanh(float64(i) / tanhScale)
		}
	})
	neg := false
	if x < 0 {
		neg = true
		x = -x
	}
	var y float64
	if x >= tanhMax || math.IsNaN(x) {
		y = 1
	} else {
		t := x * tanhScale
		i := int(t)
		y = tanhTable[i] + (t-float64(i))*(tanhTable[i+1]-tanhTable[i])
	}
	if neg {
		return -y
	}
	return y
}
