package hwsim

// tage is a small TAGE-like predictor: a per-site 2-bit base component plus
// a few partially-tagged components indexed by geometrically longer global
// history. The longest matching tagged component provides the prediction;
// on a mispredict a longer component is allocated (deterministically — the
// first candidate with a dead useful counter, else all candidates decay).
//
// The base component is per-site, so static hint bits seed it directly,
// the same way NewTwoBit seeds: the hint is the prediction hardware starts
// from until history-correlated components warm up and take over.
type tage struct {
	name  string
	base  []uint8 // per-site 2-bit direction counters
	comps []tageComp
	ghr   uint64

	// provider bookkeeping between Predict and Update.
	pComp    int // providing component, -1 = base
	pIdx     uint32
	pPred    bool
	altPred  bool
	newAlloc bool // provider entry was allocated recently (weak confidence)
}

type tageComp struct {
	hist int // global-history length folded into the index
	tag  []uint8
	ctr  []int8 // 3-bit signed, taken when >= 0
	u    []uint8
	mask uint32
}

// tageHistLens are the component history lengths (geometric, TAGE-style).
var tageHistLens = [...]int{4, 9, 18}

// DefaultTageBits sizes each tagged component table (log2 entries).
const DefaultTageBits = 10

// NewTage builds the TAGE-like predictor over nsites static sites,
// optionally seeding the base component from hint bits.
func NewTage(nsites int, hints []bool) Predictor {
	p := &tage{name: "tage", pComp: -1}
	p.base = make([]uint8, nsites)
	for i := range p.base {
		p.base[i] = 1
		if hints != nil && hints[i] {
			p.base[i] = 2
		}
	}
	for _, h := range tageHistLens {
		n := 1 << DefaultTageBits
		p.comps = append(p.comps, tageComp{
			hist: h,
			tag:  make([]uint8, n),
			ctr:  make([]int8, n),
			u:    make([]uint8, n),
			mask: uint32(n) - 1,
		})
	}
	return p
}

func (p *tage) Name() string { return p.name }

// fold compresses the low h bits of the global history into 32 bits.
func fold(ghr uint64, h int) uint32 {
	x := ghr & (1<<uint(h) - 1)
	return uint32(x) ^ uint32(x>>32)
}

func (c *tageComp) index(site int32, ghr uint64) uint32 {
	f := fold(ghr, c.hist)
	return (uint32(site)*2654435761 ^ f ^ f<<3) & c.mask
}

func (c *tageComp) tagOf(site int32, ghr uint64) uint8 {
	f := fold(ghr, c.hist)
	t := uint32(site)*40503 ^ f*2654435761>>8
	t ^= t >> 16
	tag := uint8(t)
	if tag == 0 {
		tag = 1 // 0 marks an empty entry
	}
	return tag
}

func (p *tage) Predict(site int32) bool {
	basePred := ctrTaken(p.base[site])
	p.pComp, p.pPred, p.altPred, p.newAlloc = -1, basePred, basePred, false
	for ci := len(p.comps) - 1; ci >= 0; ci-- {
		c := &p.comps[ci]
		i := c.index(site, p.ghr)
		if c.tag[i] != c.tagOf(site, p.ghr) {
			continue
		}
		pred := c.ctr[i] >= 0
		if p.pComp < 0 {
			p.pComp, p.pIdx, p.pPred = ci, i, pred
			p.newAlloc = c.ctr[i] == 0 || c.ctr[i] == -1
			continue // keep scanning for the alternate prediction
		}
		p.altPred = pred
		break
	}
	if p.pComp < 0 {
		return basePred
	}
	// Newly-allocated entries have no confidence yet — use the alternate
	// prediction until the counter moves off weak (altPred defaults to the
	// base prediction when no shorter tagged component matched).
	if p.newAlloc && p.altPred != p.pPred {
		return p.altPred
	}
	return p.pPred
}

func (p *tage) Update(site int32, taken bool) {
	pred := p.pPred
	if p.pComp >= 0 && p.newAlloc && p.altPred != p.pPred {
		pred = p.altPred
	}

	if p.pComp >= 0 {
		c := &p.comps[p.pComp]
		// Useful counter: the provider distinguished itself from the
		// alternate — reward when right, decay when wrong.
		if p.pPred != p.altPred {
			if p.pPred == taken {
				if c.u[p.pIdx] < 3 {
					c.u[p.pIdx]++
				}
			} else if c.u[p.pIdx] > 0 {
				c.u[p.pIdx]--
			}
		}
		// 3-bit signed saturating counter update.
		if taken {
			if c.ctr[p.pIdx] < 3 {
				c.ctr[p.pIdx]++
			}
		} else if c.ctr[p.pIdx] > -4 {
			c.ctr[p.pIdx]--
		}
	} else {
		p.base[site] = bump(p.base[site], taken)
	}

	// On a mispredict, allocate in a component with longer history than the
	// provider: first candidate whose useful counter is dead; if none, decay
	// them all (deterministic stand-in for TAGE's randomized allocation).
	if pred != taken {
		start := p.pComp + 1
		allocated := false
		for ci := start; ci < len(p.comps); ci++ {
			c := &p.comps[ci]
			i := c.index(site, p.ghr)
			if c.u[i] == 0 {
				c.tag[i] = c.tagOf(site, p.ghr)
				if taken {
					c.ctr[i] = 0 // weakly taken
				} else {
					c.ctr[i] = -1 // weakly not-taken
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for ci := start; ci < len(p.comps); ci++ {
				c := &p.comps[ci]
				i := c.index(site, p.ghr)
				if c.u[i] > 0 {
					c.u[i]--
				}
			}
		}
	}

	p.ghr = p.ghr<<1 | b2u(taken)
	p.pComp = -1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
