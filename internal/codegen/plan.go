package codegen

import (
	"repro/internal/guard"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Plan carries profile-guided gating decisions into compilation. The
// speculative transformations the optimizing targets apply unconditionally
// (conditional-move conversion, loop unrolling) consult the plan per source
// position, so an edge-profile estimator can restrict them to code it
// predicts hot. A nil Plan — or a nil field — preserves the historical
// unconditional behaviour.
//
// Decisions are keyed by source position rather than IR identity because
// both transformations run on (or commit to) the AST before the IR of the
// optimized compilation exists; positions are the stable names that survive
// from the baseline compilation whose IR the estimator analyzed.
type Plan struct {
	// Cmov reports whether the if-statement at pos should be converted to
	// conditional moves.
	Cmov func(pos minic.Pos) bool
	// Unroll reports whether the counted for-loop at pos should be unrolled.
	Unroll func(pos minic.Pos) bool
}

func (p *Plan) cmovOK(pos minic.Pos) bool {
	return p == nil || p.Cmov == nil || p.Cmov(pos)
}

func (p *Plan) unrollFilter() func(minic.Pos) bool {
	if p == nil {
		return nil
	}
	return p.Unroll
}

// BranchOrigin ties an emitted conditional branch back to the source
// statement it implements.
type BranchOrigin struct {
	Pos minic.Pos
	// Loop marks the bottom test of a loop (the branch whose taken edge is
	// the back edge); its taken probability is the loop-continue
	// probability, which is what unrolling decisions need.
	Loop bool
}

// Meta is the side table a recorded compilation produces: for every
// conditional branch site of the generated IR, the source origin of the
// branch. Profile estimators use it to translate IR-level frequency
// estimates into the position-keyed decisions a Plan carries.
type Meta struct {
	Branch map[ir.BranchRef]BranchOrigin
}

// OriginsAt returns the branch sites recorded for position pos.
func (m *Meta) OriginsAt(pos minic.Pos) []ir.BranchRef {
	var out []ir.BranchRef
	for ref, o := range m.Branch {
		if o.Pos == pos {
			out = append(out, ref)
		}
	}
	return out
}

// CompilePlanned is Compile extended with profile guidance: gating
// decisions are consulted through plan, and the returned Meta records the
// source origin of every conditional branch site so callers can build the
// next plan from this compilation's IR. A nil plan compiles exactly like
// Compile (while still recording Meta), so one entry point serves both the
// baseline "discover the branches" pass and the guided pass.
func CompilePlanned(src *minic.Program, lang ir.Language, tgt Target, plan *Plan) (*ir.Program, *Meta, error) {
	meta := &Meta{Branch: make(map[ir.BranchRef]BranchOrigin)}
	prog, err := compile(src, lang, tgt, guard.Limits{}, plan, meta)
	if err != nil {
		return nil, nil, err
	}
	return prog, meta, nil
}

// stmtPos returns the source position of a statement.
func stmtPos(s minic.Stmt) (minic.Pos, bool) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return st.Pos, true
	case *minic.EmptyStmt:
		return st.Pos, true
	case *minic.AssignStmt:
		return st.Pos, true
	case *minic.ExprStmt:
		return st.Pos, true
	case *minic.IfStmt:
		return st.Pos, true
	case *minic.WhileStmt:
		return st.Pos, true
	case *minic.DoStmt:
		return st.Pos, true
	case *minic.ForStmt:
		return st.Pos, true
	case *minic.ReturnStmt:
		return st.Pos, true
	case *minic.BreakStmt:
		return st.Pos, true
	case *minic.ContinueStmt:
		return st.Pos, true
	}
	return minic.Pos{}, false
}
