package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// siteReload guards the model-registry swap: an injected fault makes Reload
// fail atomically — the old version keeps serving, nothing half-installed.
// The site carries the cluster.* prefix because a reload is a cluster-level
// rollout event even when triggered on a single replica.
var siteReload = faultinject.Register("cluster.reload")

// modelVersion is one installed model generation: the model, the worker
// pool bound to it, and a reference count of in-flight requests pinned to
// it. A request pins the version it starts with and keeps it for its whole
// lifetime, so a hot reload mid-request can never hand half a request to a
// different model. refs starts at 1 — the registry's own reference — and
// idle closes when a retired version's count reaches zero, which is the
// signal that its pool may drain.
type modelVersion struct {
	version int64
	model   *core.Model
	pool    *pool
	refs    atomic.Int64
	idle    chan struct{}
}

func newModelVersion(version int64, m *core.Model, p *pool) *modelVersion {
	mv := &modelVersion{version: version, model: m, pool: p, idle: make(chan struct{})}
	mv.refs.Store(1)
	return mv
}

// tryPin acquires a reference unless the version has already fully retired
// (count hit zero). The CAS loop makes pinning safe against a concurrent
// retirement: a count observed at zero stays at zero.
func (mv *modelVersion) tryPin() bool {
	for {
		n := mv.refs.Load()
		if n <= 0 {
			return false
		}
		if mv.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// unpin releases one reference; the last release closes idle.
func (mv *modelVersion) unpin() {
	if mv.refs.Add(-1) == 0 {
		close(mv.idle)
	}
}

// pinned returns the current version with a reference held. The loop covers
// the narrow race where the loaded version retires to zero between the load
// and the pin — the swap that retired it installed a newer current first,
// so a retry always terminates.
func (s *Server) pinned() *modelVersion {
	for {
		if mv := s.current.Load(); mv.tryPin() {
			return mv
		}
	}
}

// currentVersion returns the serving version without pinning it (metrics
// and health reads only — never hold it across a request).
func (s *Server) currentVersion() *modelVersion { return s.current.Load() }

// ModelVersion reports the version number currently serving new requests.
func (s *Server) ModelVersion() int64 { return s.current.Load().version }

// errReloadDraining rejects reloads that race a shutdown.
var errReloadDraining = errors.New("serve: reload refused: server is draining")

// Reload atomically installs m as the next model version. New requests are
// served by m immediately; requests already in flight stay pinned to the
// version they started with, and the old version's worker pool drains in
// the background once its last pinned request completes. A failed reload
// (nil model, injected fault, draining server) leaves the old version
// serving untouched.
func (s *Server) Reload(m *core.Model) (int64, error) {
	if m == nil {
		return 0, errors.New("serve: Reload needs a model")
	}
	if err := faultinject.Fire(siteReload); err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return 0, errReloadDraining
	}
	old := s.current.Load()
	v := old.version + 1
	mv := newModelVersion(v, m, newPool(m, s.cfg.Workers, s.cfg.MaxBatch, s.cfg.QueueDepth, s.metrics))
	s.versions = append(s.versions, mv)
	s.current.Store(mv)
	s.mu.Unlock()
	s.metrics.reloads.Add(1)

	// Retire the old version: drop the registry's reference and drain its
	// pool once every pinned request has released. The drain is bounded so
	// a wedged worker cannot leak the goroutine forever.
	go func() {
		old.unpin()
		<-old.idle
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = old.pool.drain(ctx)
	}()
	return v, nil
}
