package features

import (
	"testing"

	"repro/internal/neural"
)

// quantFixture builds an encoder over a small synthetic training set with
// the shapes that matter: common and rare values (skewed column stats),
// gated features, and a constant column candidate.
func quantFixture() (*Encoder, []Vector) {
	mk := func(vals ...string) Vector {
		var v Vector
		for i := range v.Values {
			v.Values[i] = Unknown
		}
		for i, val := range vals {
			v.Values[i] = val
		}
		return v
	}
	train := []Vector{
		mk("BEQ", "F", "SLT"),
		mk("BEQ", "F", "ADD"),
		mk("BEQ", "B", "SLT"),
		mk("BNE", "F", "SLT"),
		mk("BEQ", "F", "SLT"),
		mk("BEQ", "F", "RARE"), // rare value: skewed Bernoulli stats
		mk("BEQ", "F"),         // gated third feature
	}
	return NewEncoder(train), train
}

// TestQuantEncoderMatchesFloatPath is the grid-equivalence contract: for
// every vector (training values, unseen values, gated features), the
// precomputed-block encoder produces exactly the bytes the float
// Encode → QuantizeInput pipeline produces.
func TestQuantEncoderMatchesFloatPath(t *testing.T) {
	enc, train := quantFixture()
	for _, xscale := range []float64{127 / enc.MaxAbsActivation(), 127 / 4.0, 16.0} {
		qe, err := NewQuantEncoder(enc, xscale)
		if err != nil {
			t.Fatal(err)
		}
		// The float reference: a throwaway quant net carries QuantizeInput's
		// grid for the same xscale.
		qn, err := neural.Quantize(neural.New(neural.Config{Inputs: enc.Dim, Hidden: 1, Seed: 1}), xscale)
		if err != nil {
			t.Fatal(err)
		}

		probe := append([]Vector(nil), train...)
		unseen := train[0]
		unseen.Values[0] = "NEVER-SEEN"
		probe = append(probe, unseen)
		gatedAll := Vector{}
		for i := range gatedAll.Values {
			gatedAll.Values[i] = Unknown
		}
		probe = append(probe, gatedAll)

		x := make([]float64, enc.Dim)
		want := make([]int8, enc.Dim)
		got := make([]int8, enc.Dim)
		for vi, v := range probe {
			enc.Encode(v, x)
			qn.QuantizeInput(x, want)
			qe.Encode(&v, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("xscale=%v vector %d column %d: block path %d, float path %d",
						xscale, vi, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQuantEncoderZeroAlloc pins the hot-path property the serving layer
// depends on: steady-state encoding allocates nothing.
func TestQuantEncoderZeroAlloc(t *testing.T) {
	enc, train := quantFixture()
	qe, err := NewQuantEncoder(enc, 127/enc.MaxAbsActivation())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int8, enc.Dim)
	v := train[0]
	if allocs := testing.AllocsPerRun(200, func() { qe.Encode(&v, dst) }); allocs != 0 {
		t.Fatalf("QuantEncoder.Encode allocates %v per run, want 0", allocs)
	}
}

// TestQuantEncoderValidates pins the error and panic paths.
func TestQuantEncoderValidates(t *testing.T) {
	enc, _ := quantFixture()
	if _, err := NewQuantEncoder(nil, 1); err == nil {
		t.Error("nil encoder: no error")
	}
	for _, s := range []float64{0, -2} {
		if _, err := NewQuantEncoder(enc, s); err == nil {
			t.Errorf("xscale=%v: no error", s)
		}
	}
	qe, err := NewQuantEncoder(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("short dst did not panic")
		}
	}()
	qe.Encode(&Vector{}, make([]int8, enc.Dim-1))
}

// TestMaxAbsActivation checks the calibration range against a brute-force
// scan of every encodable column state.
func TestMaxAbsActivation(t *testing.T) {
	enc, train := quantFixture()
	var brute float64
	x := make([]float64, enc.Dim)
	probe := append([]Vector(nil), train...)
	unseen := train[0]
	unseen.Values[1] = "NOPE"
	probe = append(probe, unseen)
	for _, v := range probe {
		enc.Encode(v, x)
		for _, xv := range x {
			if a := xv; a < 0 {
				a = -a
				if a > brute {
					brute = a
				}
			} else if a > brute {
				brute = a
			}
		}
	}
	if m := enc.MaxAbsActivation(); m < brute {
		t.Fatalf("MaxAbsActivation %v < observed activation %v", m, brute)
	}
}
