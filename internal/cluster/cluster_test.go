package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/serve"
)

// The shared fixture: a small but real ESP model trained on a handful of
// corpus programs, mirroring the serve package's fixture so cluster
// answers can be checked against the same offline reference.
var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureData  []*core.ProgramData
	fixtureErr   error
)

func testModel(t testing.TB) (*core.Model, []*core.ProgramData) {
	t.Helper()
	fixtureOnce.Do(func() {
		for _, name := range []string{"bc", "grep", "gzip"} {
			e, ok := corpus.ByName(name)
			if !ok {
				fixtureErr = fmt.Errorf("no corpus entry %q", name)
				return
			}
			prog, err := e.Compile(codegen.Default)
			if err != nil {
				fixtureErr = err
				return
			}
			pd, err := core.Analyze(prog, e.Language, e.RunConfig())
			if err != nil {
				fixtureErr = err
				return
			}
			fixtureData = append(fixtureData, pd)
		}
		cfg := core.Config{Hidden: 8}
		cfg.Net.MaxEpochs = 40
		cfg.Net.Patience = 10
		fixtureModel = core.Train(fixtureData, cfg)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureModel, fixtureData
}

func vectorValues(vecs []features.Vector) [][]string {
	out := make([][]string, len(vecs))
	for i, v := range vecs {
		vals := make([]string, features.NumFeatures)
		copy(vals, v.Values[:])
		out[i] = vals
	}
	return out
}

// degradedReference computes the exact Dempster-Shafer fallback answers, the
// only deviation from the model the cluster contract permits.
func degradedReference(vecs []features.Vector) []float64 {
	d := heuristics.NewDSHCBallLarus()
	out := make([]float64, len(vecs))
	for i := range vecs {
		out[i], _ = d.TakenProbabilityFromVector(&vecs[i])
	}
	return out
}

// checkPredictions verifies a 200 response: non-degraded answers must be
// bit-identical to the offline model, degraded answers bit-identical to the
// heuristic fallback — no third outcome exists, however many replicas,
// failovers, or reloads the request crossed.
func checkPredictions(t *testing.T, pr *serve.PredictResponse, model, degraded []float64) {
	t.Helper()
	want := model
	if pr.Degraded {
		want = degraded
	}
	if len(pr.Predictions) != len(want) {
		t.Errorf("%d predictions, want %d", len(pr.Predictions), len(want))
		return
	}
	for i, p := range pr.Predictions {
		if p.Probability != want[i] {
			t.Errorf("prediction %d (degraded=%v): %v, want %v", i, pr.Degraded, p.Probability, want[i])
			return
		}
	}
}

// testReplica is one espserve instance wired the way cmd/espserve wires it:
// a serve.Server with its peer-cache handler mounted beside it.
type testReplica struct {
	name  string
	srv   *serve.Server
	cache *artifact.Cache
	peers *PeerCache
	ts    *httptest.Server
}

func newTestReplica(t *testing.T, name string, cfg serve.Config) *testReplica {
	t.Helper()
	model, _ := testModel(t)
	if cfg.Model == nil {
		cfg.Model = model
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &testReplica{name: name, srv: srv, cache: cache}
	r.peers = NewPeerCache(cache, PeerCacheConfig{Counters: srv.ClusterStats()})
	mux := http.NewServeMux()
	mux.Handle(PeerPathPrefix, r.peers.Handler())
	mux.Handle("/", srv.Handler())
	r.ts = httptest.NewServer(mux)
	t.Cleanup(func() {
		r.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = r.srv.Drain(ctx)
	})
	return r
}

// restart closes the replica's listener and brings it back on a fresh port
// with the same serve.Server — the ring identity survives, the URL moves.
func (r *testReplica) restart() {
	handler := r.ts.Config.Handler
	r.ts.Close()
	r.ts = httptest.NewServer(handler)
}

// connectPeers wires every replica's peer ring to every other replica's
// current URL.
func connectPeers(replicas ...*testReplica) {
	for _, r := range replicas {
		ring := r.peers.Ring()
		for _, m := range ring.Members() {
			ring.Remove(m)
		}
		for _, other := range replicas {
			if other != r {
				ring.Add(other.ts.URL)
			}
		}
	}
}

func postPredict(t *testing.T, url string, req serve.PredictRequest) (*http.Response, serve.PredictResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr serve.PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, pr
}

func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
