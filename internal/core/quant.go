// Decision-pinned quantization calibration.
//
// Quantization is allowed to move probabilities but must never flip a
// measured outcome: every taken/not-taken decision — and therefore every
// Table 4 miss rate — must be bit-identical to the float64 reference over
// the whole corpus. The calibration achieves that with two knobs:
//
//  1. A clip margin. One-hot z-normalized activations are heavy-tailed (a
//     rare feature value normalizes to (1−p)/√(p(1−p)), far larger than the
//     common values' magnitudes), so quantizing the full range wastes most
//     of the int8 grid on outliers. The sweep clips the representable range
//     to margin·max|activation| (larger inputs saturate) and measures how
//     faithful each margin is.
//
//  2. A guard band. For each margin, the sweep finds every corpus branch
//     whose quantized decision disagrees with the float one and records the
//     largest quantized decision margin |y_q − 0.5| among them. Setting the
//     guard just above it means every disagreeing branch falls inside the
//     band — where the model recomputes in float64 — so corpus-wide
//     decisions are pinned *by construction*, and the differential test
//     verifies it end to end.
//
// The chosen margin is the one that sends the fewest vectors to the float
// fallback (the serving cost of safety), tie-broken by probability
// fidelity.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/features"
	"repro/internal/neural"
)

// DefaultQuantMargins is the clip-margin sweep grid: 1 keeps the corpus's
// full activation range representable; smaller margins trade outlier
// saturation for grid resolution on the common values.
var DefaultQuantMargins = []float64{1, 0.75, 0.5, 0.35, 0.25, 0.18, 0.125, 0.09, 0.0625}

// QuantSweepPoint reports one margin of the calibration sweep.
type QuantSweepPoint struct {
	// Margin is the clip margin; XScale the input scale it induces.
	Margin float64 `json:"margin"`
	XScale float64 `json:"xscale"`
	// Flips counts corpus branch sites whose raw quantized decision
	// disagrees with the float reference (before the guard band).
	Flips int `json:"flips"`
	// Guard is the guard band needed to pin every decision: the largest
	// |y_q − 0.5| among flipped sites (plus a safety epsilon), zero when
	// nothing flips.
	Guard float64 `json:"guard"`
	// GuardHits counts corpus vectors that fall inside the guard band and
	// would take the float64 fallback when serving.
	GuardHits int `json:"guard_hits"`
	// Vectors is the corpus-wide vector count the sweep evaluated.
	Vectors int `json:"vectors"`
	// MeanAbsDelta and MaxAbsDelta measure probability movement between
	// the raw quantized and float outputs.
	MeanAbsDelta float64 `json:"mean_abs_delta"`
	MaxAbsDelta  float64 `json:"max_abs_delta"`
}

// FallbackFraction is the fraction of corpus vectors served by the float
// fallback under this margin's guard band.
func (p QuantSweepPoint) FallbackFraction() float64 {
	if p.Vectors == 0 {
		return 0
	}
	return float64(p.GuardHits) / float64(p.Vectors)
}

// QuantCalibrationReport is the full sweep outcome.
type QuantCalibrationReport struct {
	// MaxAbsActivation is the corpus encoder's activation range the
	// margins scale against.
	MaxAbsActivation float64           `json:"max_abs_activation"`
	Points           []QuantSweepPoint `json:"points"`
	Chosen           QuantSweepPoint   `json:"chosen"`
}

// Render formats the sweep as a table for esptool calibrate.
func (r *QuantCalibrationReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Quantization calibration sweep (corpus max |activation| = %.3f)\n", r.MaxAbsActivation)
	fmt.Fprintf(&sb, "%8s %10s %6s %9s %10s %10s %10s\n",
		"margin", "xscale", "flips", "guard", "fallback", "mean|Δp|", "max|Δp|")
	for _, p := range r.Points {
		marker := " "
		if p.Margin == r.Chosen.Margin {
			marker = "*"
		}
		fmt.Fprintf(&sb, "%7.4f%s %10.4f %6d %9.6f %9.2f%% %10.6f %10.6f\n",
			p.Margin, marker, p.XScale, p.Flips, p.Guard,
			100*p.FallbackFraction(), p.MeanAbsDelta, p.MaxAbsDelta)
	}
	fmt.Fprintf(&sb, "chosen: margin %.4f, xscale %.4f, guard %.6f — decisions pinned, %.2f%% of corpus vectors take the float fallback\n",
		r.Chosen.Margin, r.Chosen.XScale, r.Chosen.Guard, 100*r.Chosen.FallbackFraction())
	return sb.String()
}

// guardEpsilon pads the guard band so a flipped site sits strictly inside
// it rather than exactly on its edge.
const guardEpsilon = 1e-9

// CalibrateQuant sweeps the quantization scale over the corpus and pins
// decisions: for every margin it quantizes the model, runs every corpus
// feature vector through both forward passes, and derives the guard band
// that routes every would-flip decision to the float64 fallback. The
// winning calibration is stored in m.QuantCalib (ready for EnableQuant and
// Save); the model's serving path is left untouched. A nil margins slice
// sweeps DefaultQuantMargins.
func CalibrateQuant(m *Model, data []*ProgramData, margins []float64) (*QuantCalibrationReport, error) {
	if m.Net == nil {
		return nil, fmt.Errorf("core: quantization calibration requires the neural classifier (have %s)", m.Cfg.Classifier)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("core: quantization calibration needs corpus programs")
	}
	if len(margins) == 0 {
		margins = DefaultQuantMargins
	}

	// Mask once, and compute the float64 reference probabilities once —
	// they are margin-independent.
	var vecs []features.Vector
	for _, pd := range data {
		for _, v := range pd.Vectors {
			vecs = append(vecs, maskVector(v, m.excluded))
		}
	}
	x := make([]float64, m.Encoder.Dim)
	h := make([]float64, m.Net.Hidden)
	ref := make([]float64, len(vecs))
	for i, v := range vecs {
		m.Encoder.Encode(v, x)
		ref[i] = m.Net.ForwardInto(h, x)
	}

	maxAbs := m.Encoder.MaxAbsActivation()
	if maxAbs == 0 {
		return nil, fmt.Errorf("core: degenerate encoder: zero activation range")
	}
	rep := &QuantCalibrationReport{MaxAbsActivation: maxAbs}
	qx := make([]int8, m.Encoder.Dim)
	for _, margin := range margins {
		if margin <= 0 {
			return nil, fmt.Errorf("core: bad calibration margin %v", margin)
		}
		xscale := 127 / (maxAbs * margin)
		qn, err := neural.Quantize(m.Net, xscale)
		if err != nil {
			return nil, err
		}
		qe, err := features.NewQuantEncoder(m.Encoder, xscale)
		if err != nil {
			return nil, err
		}
		p := QuantSweepPoint{Margin: margin, XScale: xscale, Vectors: len(vecs)}
		var sumDelta float64
		quant := make([]float64, len(vecs))
		for i := range vecs {
			qe.Encode(&vecs[i], qx)
			yq := qn.Forward(qx)
			quant[i] = yq
			d := math.Abs(yq - ref[i])
			sumDelta += d
			if d > p.MaxAbsDelta {
				p.MaxAbsDelta = d
			}
			if (ref[i] > 0.5) != (yq > 0.5) {
				p.Flips++
				if g := math.Abs(yq - 0.5); g > p.Guard {
					p.Guard = g
				}
			}
		}
		if p.Flips > 0 {
			p.Guard += guardEpsilon
		}
		for _, yq := range quant {
			if math.Abs(yq-0.5) <= p.Guard {
				p.GuardHits++
			}
		}
		p.MeanAbsDelta = sumDelta / float64(len(vecs))
		rep.Points = append(rep.Points, p)
	}

	// Choose the cheapest safe point: fewest fallback hits, then best
	// probability fidelity, then the larger margin (less saturation for
	// out-of-corpus inputs).
	order := make([]int, len(rep.Points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := rep.Points[order[a]], rep.Points[order[b]]
		if pa.GuardHits != pb.GuardHits {
			return pa.GuardHits < pb.GuardHits
		}
		if pa.MeanAbsDelta != pb.MeanAbsDelta {
			return pa.MeanAbsDelta < pb.MeanAbsDelta
		}
		return pa.Margin > pb.Margin
	})
	rep.Chosen = rep.Points[order[0]]
	m.QuantCalib = &QuantCalibration{
		XScale: rep.Chosen.XScale,
		Guard:  rep.Chosen.Guard,
		Margin: rep.Chosen.Margin,
	}
	return rep, nil
}
