//go:build amd64 && !purego

#include "textflag.h"

// The sparse-kernel inner loops. Lanes are independent accumulators, and
// multiply and add are separate IEEE operations (no FMA), so these produce
// exactly the bits of the generic Go loops.

// func x86HasAVX() bool
TEXT ·x86HasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	BTL  $27, CX       // OSXSAVE
	JCC  no
	BTL  $28, CX       // AVX
	JCC  no
	XORL CX, CX
	XGETBV             // XCR0 in AX
	ANDL $6, AX        // XMM|YMM state enabled by the OS
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func csrGatherAVX(h, w *float64, idx *int32, val *float64, nnz, n, stride int)
//
// for p in [0,nnz): h[0:n] += w[idx[p]*stride : +n] * val[p]
TEXT ·csrGatherAVX(SB), NOSPLIT, $0-56
	MOVQ h+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ idx+16(FP), DX
	MOVQ val+24(FP), CX
	MOVQ nnz+32(FP), R8
	MOVQ n+40(FP), R9
	MOVQ stride+48(FP), R15
gploop:
	MOVLQSX (DX), R10      // col = idx[p]
	IMULQ   R15, R10       // col*stride
	LEAQ    (SI)(R10*8), R14
	VBROADCASTSD (CX), Y0  // val[p] in all lanes (X0 = low lane)
	MOVQ    DI, R13        // accumulator cursor
	MOVQ    R9, R12        // remaining lanes
gvloop:
	CMPQ R12, $4
	JLT  gtail
	VMOVUPD (R14), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (R13), Y1, Y1
	VMOVUPD Y1, (R13)
	ADDQ $32, R13
	ADDQ $32, R14
	SUBQ $4, R12
	JMP  gvloop
gtail:
	TESTQ R12, R12
	JE    gnext
	MOVSD (R14), X1
	MULSD X0, X1
	ADDSD (R13), X1
	MOVSD X1, (R13)
	ADDQ  $8, R13
	ADDQ  $8, R14
	DECQ  R12
	JMP   gtail
gnext:
	ADDQ $4, DX
	ADDQ $8, CX
	DECQ R8
	JNE  gploop
	VZEROUPPER
	RET

// func csrScatterAVX(gw, dh *float64, idx *int32, val *float64, nnz, n, stride int)
//
// for p in [0,nnz): gw[idx[p]*stride : +n] += dh[0:n] * val[p]
TEXT ·csrScatterAVX(SB), NOSPLIT, $0-56
	MOVQ gw+0(FP), DI
	MOVQ dh+8(FP), SI
	MOVQ idx+16(FP), DX
	MOVQ val+24(FP), CX
	MOVQ nnz+32(FP), R8
	MOVQ n+40(FP), R9
	MOVQ stride+48(FP), R15
sploop:
	MOVLQSX (DX), R10
	IMULQ   R15, R10
	LEAQ    (DI)(R10*8), R14  // destination column
	VBROADCASTSD (CX), Y0
	MOVQ    SI, R13           // dh cursor
	MOVQ    R9, R12
svloop:
	CMPQ R12, $4
	JLT  stail
	VMOVUPD (R13), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (R14), Y1, Y1
	VMOVUPD Y1, (R14)
	ADDQ $32, R13
	ADDQ $32, R14
	SUBQ $4, R12
	JMP  svloop
stail:
	TESTQ R12, R12
	JE    snext
	MOVSD (R13), X1
	MULSD X0, X1
	ADDSD (R14), X1
	MOVSD X1, (R14)
	ADDQ  $8, R13
	ADDQ  $8, R14
	DECQ  R12
	JMP   stail
snext:
	ADDQ $4, DX
	ADDQ $8, CX
	DECQ R8
	JNE  sploop
	VZEROUPPER
	RET
