package interp_test

// The corpus-wide differential test: the micro-op interpreter (Run) and the
// retained per-instruction reference interpreter (RunReference) must be
// bit-identical — profiles, edges, results, and typed error points — on
// every corpus program, with fault-injection armed on every registered
// site, and under tight fuel/stack/call-depth budgets.
//
// This lives in package interp_test (not interp) because the corpus package
// imports interp for its run configurations.

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/interp"
	"repro/internal/ir"
)

// armAllSites activates an injector with an always-fire error rule on every
// registered fault site. The interpreter's trace loop crosses none of them,
// so an armed injector must not perturb a single profile bit; if a future
// change routes tracing through an injectable site, this catches it.
func armAllSites(t *testing.T) {
	t.Helper()
	var rules []faultinject.Rule
	for _, site := range faultinject.Sites() {
		rules = append(rules, faultinject.Rule{
			Site: site,
			Kind: faultinject.Error,
			Err:  errors.New("injected: " + site),
			Rate: 1,
		})
	}
	t.Cleanup(faultinject.Activate(faultinject.New(1, rules...)))
}

func diffProfiles(t *testing.T, name string, uop, ref *interp.Profile) {
	t.Helper()
	if uop.Insns != ref.Insns || uop.Result != ref.Result ||
		uop.CondExec != ref.CondExec || uop.CondTaken != ref.CondTaken {
		t.Fatalf("%s: totals diverge: insns %d/%d result %d/%d cond %d/%d taken %d/%d",
			name, uop.Insns, ref.Insns, uop.Result, ref.Result,
			uop.CondExec, ref.CondExec, uop.CondTaken, ref.CondTaken)
	}
	if len(uop.Branches) != len(ref.Branches) {
		t.Fatalf("%s: %d branch sites vs reference %d", name, len(uop.Branches), len(ref.Branches))
	}
	for r, c := range ref.Branches {
		uc := uop.Branches[r]
		if uc == nil || *uc != *c {
			t.Fatalf("%s: site %v: uop %+v reference %+v", name, r, uc, c)
		}
	}
	if !reflect.DeepEqual(uop.Edges, ref.Edges) {
		t.Fatalf("%s: edge profiles diverge (%d vs %d edges)",
			name, len(uop.Edges), len(ref.Edges))
	}
	if !reflect.DeepEqual(uop.Outputs, ref.Outputs) || !reflect.DeepEqual(uop.FOutputs, ref.FOutputs) {
		t.Fatalf("%s: outputs diverge", name)
	}
}

// TestCorpusUopMatchesReference runs every corpus program through both
// interpreters under the standard study configuration (edges on) and
// requires exact agreement, with fault injection armed throughout.
func TestCorpusUopMatchesReference(t *testing.T) {
	armAllSites(t)
	entries := corpus.All()
	if len(entries) < 46 {
		t.Fatalf("corpus has %d programs, expected the full 46", len(entries))
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := e.Compile(codegen.Default)
			if err != nil {
				t.Fatal(err)
			}
			cfg := e.RunConfig()
			cfg.CollectEdges = true
			uop, err := interp.Run(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := interp.RunReference(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			diffProfiles(t, e.Name, uop, ref)
		})
	}
}

// TestCorpusBudgetErrorsMatchReference starves every corpus program of
// fuel, stack, and call depth and requires the micro-op path to fail with
// exactly the same typed error as the reference — budget enforcement moved
// from per-instruction to per-block accounting, so the error *point* is the
// part most worth pinning.
func TestCorpusBudgetErrorsMatchReference(t *testing.T) {
	armAllSites(t)
	tight := []struct {
		name string
		mut  func(*interp.Config)
	}{
		{"fuel", func(c *interp.Config) { c.MaxInsns = 5_000 }},
		{"calldepth", func(c *interp.Config) { c.MaxCallDepth = 2 }},
		{"stack", func(c *interp.Config) { c.MemWords = 1 << 10 }},
	}
	for _, e := range corpus.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := e.Compile(codegen.Default)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range tight {
				cfg := e.RunConfig()
				tc.mut(&cfg)
				uop, uerr := interp.Run(prog, cfg)
				ref, rerr := interp.RunReference(prog, cfg)
				if (uerr == nil) != (rerr == nil) {
					t.Fatalf("%s: uop err %v, reference err %v", tc.name, uerr, rerr)
				}
				if uerr != nil {
					// Same typed budget error from both paths.
					for _, sentinel := range []error{
						interp.ErrFuel, interp.ErrCallDepth, interp.ErrStack,
						interp.ErrHeap, guard.ErrBudgetExceeded,
					} {
						if errors.Is(uerr, sentinel) != errors.Is(rerr, sentinel) {
							t.Fatalf("%s: error types diverge: uop %v, reference %v",
								tc.name, uerr, rerr)
						}
					}
					continue
				}
				// Both survived the tight budget: profiles must still match.
				diffProfiles(t, tc.name, uop, ref)
			}
		})
	}
}

// TestReferenceMatchesGoldenSemantics pins the reference path itself: a
// small program with a known exact profile must produce the same counts
// from both interpreters and from the documented semantics.
func TestReferenceMatchesGoldenSemantics(t *testing.T) {
	e, ok := corpus.ByName("tomcatv")
	if !ok {
		t.Skip("no tomcatv in corpus")
	}
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.RunConfig()
	cfg.CollectEdges = true
	uop, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uop.CondExec == 0 || len(uop.Edges) == 0 {
		t.Fatalf("tomcatv traced no conditional branches (cond=%d edges=%d): vacuous differential",
			uop.CondExec, len(uop.Edges))
	}
	var refs []ir.BranchRef
	for r := range uop.Branches {
		refs = append(refs, r)
	}
	if len(refs) == 0 {
		t.Fatal("no branch sites recorded")
	}
}
