package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFireNoInjectorIsNoop(t *testing.T) {
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("Fire with no injector: %v", err)
	}
}

func TestExplicitHitSchedule(t *testing.T) {
	inj := New(1, Rule{Site: "s", Kind: Error, Hits: []int64{2, 5}})
	defer Activate(inj)()
	var got []int
	for i := 1; i <= 6; i++ {
		if err := Fire("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error does not wrap ErrInjected: %v", i, err)
			}
			got = append(got, i)
		}
	}
	if fmt.Sprint(got) != "[2 5]" {
		t.Fatalf("fired at hits %v, want [2 5]", got)
	}
	if inj.Hits("s") != 6 || inj.Fired("s") != 2 {
		t.Fatalf("hits=%d fired=%d, want 6/2", inj.Hits("s"), inj.Fired("s"))
	}
}

// TestRateScheduleDeterministic: the same seed must fire the same hit
// numbers, and a different seed a different set.
func TestRateScheduleDeterministic(t *testing.T) {
	pattern := func(seed uint64) []int {
		inj := New(seed, Rule{Site: "s", Kind: Error, Rate: 0.3})
		defer Activate(inj)()
		var got []int
		for i := 1; i <= 200; i++ {
			if Fire("s") != nil {
				got = append(got, i)
			}
		}
		return got
	}
	a1, a2, b := pattern(42), pattern(42), pattern(43)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatalf("same seed, different patterns:\n%v\n%v", a1, a2)
	}
	if fmt.Sprint(a1) == fmt.Sprint(b) {
		t.Fatal("different seeds produced identical patterns")
	}
	// Rate 0.3 over 200 hits: the deterministic schedule should land in a
	// loose band around 60.
	if len(a1) < 30 || len(a1) > 100 {
		t.Fatalf("rate 0.3 fired %d/200 times", len(a1))
	}
}

func TestRateBounds(t *testing.T) {
	inj := New(7,
		Rule{Site: "always", Kind: Error, Rate: 1},
		Rule{Site: "never", Kind: Error, Rate: 0},
	)
	defer Activate(inj)()
	for i := 0; i < 10; i++ {
		if Fire("always") == nil {
			t.Fatal("rate 1 did not fire")
		}
		if Fire("never") != nil {
			t.Fatal("rate 0 fired")
		}
	}
}

func TestCustomErrorWrapped(t *testing.T) {
	sentinel := errors.New("boom")
	inj := New(1, Rule{Site: "s", Kind: Error, Err: sentinel, Rate: 1})
	defer Activate(inj)()
	err := Fire("s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error does not wrap ErrInjected: %v", err)
	}
}

func TestLatencyFault(t *testing.T) {
	inj := New(1, Rule{Site: "s", Kind: Latency, Delay: 30 * time.Millisecond, Rate: 1})
	defer Activate(inj)()
	start := time.Now()
	if err := Fire("s"); err != nil {
		t.Fatalf("latency fault returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestPanicFault(t *testing.T) {
	inj := New(1, Rule{Site: "s", Kind: Panic, Hits: []int64{1}})
	defer Activate(inj)()
	defer func() {
		rec := recover()
		p, ok := rec.(*Panicked)
		if !ok {
			t.Fatalf("recovered %T %v, want *Panicked", rec, rec)
		}
		if p.Site != "s" || p.Hit != 1 {
			t.Fatalf("panic value %+v", p)
		}
	}()
	_ = Fire("s")
	t.Fatal("injected panic did not fire")
}

func TestRegistry(t *testing.T) {
	name := Register("faultinject_test.site")
	if name != "faultinject_test.site" {
		t.Fatalf("Register returned %q", name)
	}
	found := false
	for _, s := range Sites() {
		if s == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered site missing from Sites(): %v", Sites())
	}
}

func TestDeactivateRestoresNoop(t *testing.T) {
	deactivate := Activate(New(1, Rule{Site: "s", Kind: Error, Rate: 1}))
	if Fire("s") == nil {
		t.Fatal("active injector did not fire")
	}
	deactivate()
	if err := Fire("s"); err != nil {
		t.Fatalf("Fire after deactivate: %v", err)
	}
}
