//go:build slow

package gencorpus_test

// slowTests widens the property sweep to 5000 seeds per mix:
//
//	go test -tags slow ./internal/gencorpus
const slowTests = true
