package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/features"
)

// TestReloadServesNewVersion: a hot reload bumps the serving version, the
// gauge and counter expose it, and answers stay bit-identical when the new
// weights equal the old (the rollout contract the cluster chaos suite
// leans on).
func TestReloadServesNewVersion(t *testing.T) {
	model, data := testModel(t)
	s, ts := testServer(t, Config{})
	if got := s.ModelVersion(); got != 1 {
		t.Fatalf("initial version %d, want 1", got)
	}

	vecs := data[0].Vectors[:4]
	offline := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offline)

	v, err := s.Reload(model)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if v != 2 || s.ModelVersion() != 2 {
		t.Fatalf("reload installed version %d (serving %d), want 2", v, s.ModelVersion())
	}

	resp, pr := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(vecs)})
	if resp.StatusCode != http.StatusOK || pr.Degraded {
		t.Fatalf("post-reload predict: status %d degraded %v", resp.StatusCode, pr.Degraded)
	}
	for i, p := range pr.Predictions {
		if p.Probability != offline[i] {
			t.Fatalf("vector %d: %v != offline %v after reload", i, p.Probability, offline[i])
		}
	}

	// /healthz and /metrics both report the new version, and the reload is
	// counted.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hz.ModelVersion != 2 {
		t.Errorf("healthz model_version = %d, want 2", hz.ModelVersion)
	}
	body := s.metrics.render()
	if !strings.Contains(body, "espserve_model_version 2") {
		t.Error("espserve_model_version gauge not at 2")
	}
	if !strings.Contains(body, "espserve_reloads_total 1") {
		t.Error("espserve_reloads_total not at 1")
	}
}

// TestReloadPinsInflightRequests: a request in flight across a reload stays
// pinned to the version it started on — it completes normally (no
// ErrDraining from the retiring pool, no degraded answer) even though its
// version was retired and drained underneath it.
func TestReloadPinsInflightRequests(t *testing.T) {
	model, data := testModel(t)
	s, ts := testServer(t, Config{Workers: 1, MaxBatch: 1, RequestTimeout: 30 * time.Second})
	vecs := data[0].Vectors[:2]
	offline := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offline)

	// Slow the forward pass so the request is still in flight when the
	// reload lands.
	deactivate := faultinject.Activate(faultinject.New(9, faultinject.Rule{
		Site: "serve.forward", Kind: faultinject.Latency,
		Delay: 300 * time.Millisecond, Rate: 1,
	}))
	defer deactivate()

	var wg sync.WaitGroup
	wg.Add(1)
	var pr PredictResponse
	var status int
	go func() {
		defer wg.Done()
		resp, got := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(vecs)})
		status, pr = resp.StatusCode, got
	}()

	// Wait for the request to be inside the pool (version pinned), then
	// reload twice back to back.
	waitCounter(t, "batches", s.metrics.batches.Load, 1)
	for i := 0; i < 2; i++ {
		if _, err := s.Reload(model); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	wg.Wait()

	if status != http.StatusOK || pr.Degraded {
		t.Fatalf("in-flight request across reload: status %d degraded %v", status, pr.Degraded)
	}
	for i, p := range pr.Predictions {
		if p.Probability != offline[i] {
			t.Fatalf("vector %d: %v != offline %v", i, p.Probability, offline[i])
		}
	}
	if got := s.ModelVersion(); got != 3 {
		t.Errorf("version %d after two reloads, want 3", got)
	}
}

// TestReloadFaultInjectedFailsAtomically: an injected fault at the
// cluster.reload site fails the reload without touching the serving
// version.
func TestReloadFaultInjectedFailsAtomically(t *testing.T) {
	model, _ := testModel(t)
	s, ts := testServer(t, Config{})
	deactivate := faultinject.Activate(faultinject.New(3, faultinject.Rule{
		Site: "cluster.reload", Kind: faultinject.Error, Rate: 1,
	}))
	defer deactivate()

	if _, err := s.Reload(model); err == nil {
		t.Fatal("reload succeeded under an injected fault")
	}
	if got := s.ModelVersion(); got != 1 {
		t.Fatalf("failed reload moved the version to %d", got)
	}
	deactivate()
	resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(testVecs(t))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serving broken after failed reload: %d", resp.StatusCode)
	}
}

// TestReloadRefusedWhileDraining: once Drain has begun the registry is
// frozen.
func TestReloadRefusedWhileDraining(t *testing.T) {
	model, _ := testModel(t)
	s, err := New(Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reload(model); err == nil {
		t.Fatal("reload accepted while draining")
	}
}

// TestReloadChurnNoGoroutineLeak: repeated reloads retire their pools
// completely — worker goroutines and background drainers all exit.
func TestReloadChurnNoGoroutineLeak(t *testing.T) {
	model, data := testModel(t)
	baseline := runtime.NumGoroutine()
	s, ts := testServer(t, Config{Workers: 2, MaxBatch: 2})
	for i := 0; i < 8; i++ {
		if _, err := s.Reload(model); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		if resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:1])}); resp.StatusCode != http.StatusOK {
			t.Fatalf("predict after reload %d: %d", i, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// testVecs returns a tiny vector set from the shared fixture.
func testVecs(t *testing.T) []features.Vector {
	_, data := testModel(t)
	return data[0].Vectors[:2]
}
