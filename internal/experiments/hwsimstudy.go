package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/gencorpus"
	"repro/internal/hwsim"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pgo"
	"repro/internal/stats"
)

// HwsimGenSeed pins the generated-corpus slice of the hardware
// co-simulation study; EXPERIMENTS.md documents the pinned value.
const HwsimGenSeed = 1995

// HwsimPredictors and HwsimSeeds name the simulated matrix, in
// presentation order. Every (predictor, seed) pair is scored from one
// traced interpreter run per program via a multiplexing sink.
var (
	HwsimPredictors = []string{"1bit", "2bit", "gshare", "tage"}
	HwsimSeeds      = []string{"unseeded", "btfnt", "heuristic", "esp", "perfect"}
)

// HwsimCell aggregates one (predictor, seed) pair over a program set:
// total dynamic branches and mispredicts, plus the same pair truncated at
// each hwsim.Warmups cold-start budget (per program, then summed).
type HwsimCell struct {
	Predictor  string  `json:"predictor"`
	Seed       string  `json:"seed"`
	Events     int64   `json:"events"`
	Miss       int64   `json:"miss"`
	WarmEvents []int64 `json:"warm_events"`
	WarmMiss   []int64 `json:"warm_miss"`
}

// Rate is the steady-state mispredict rate.
func (c *HwsimCell) Rate() float64 {
	if c.Events == 0 {
		return 0
	}
	return float64(c.Miss) / float64(c.Events)
}

// WarmRate is the cold-start mispredict rate at warmup checkpoint k.
func (c *HwsimCell) WarmRate(k int) float64 {
	if c.WarmEvents[k] == 0 {
		return 0
	}
	return float64(c.WarmMiss[k]) / float64(c.WarmEvents[k])
}

// HwsimStudyResult is the hardware predictor co-simulation: what is a good
// static prior worth to dynamic prediction hardware? Per-site predictors
// (1-bit, 2-bit, the TAGE base table) seed their counters directly from
// each source's hint bits; gshare seeds via the agree transformation.
type HwsimStudyResult struct {
	Warmups []int64 `json:"warmups"`
	GenN    int     `json:"gen_n"`
	// Cells covers the real 46-program corpus, predictor-major in
	// HwsimPredictors × HwsimSeeds order.
	Cells []HwsimCell `json:"cells"`
	// GenCells covers the pinned generated slice (absent when GenN = 0).
	GenCells []HwsimCell `json:"gen_cells,omitempty"`
	// ProgramESPMiss is each real program's steady-state mispredict rate
	// for the headline configuration (ESP-seeded 2-bit).
	ProgramESPMiss map[string]float64 `json:"program_esp_miss"`
}

// cell returns the real-corpus cell for a (predictor, seed) name pair.
func (r *HwsimStudyResult) cell(pred, seed string) *HwsimCell {
	for i := range r.Cells {
		if r.Cells[i].Predictor == pred && r.Cells[i].Seed == seed {
			return &r.Cells[i]
		}
	}
	return nil
}

// HwsimStudy simulates the predictor × seed matrix over all 46 corpus
// programs plus genN generated programs (seed HwsimGenSeed, all mixes).
// ESP hints follow the honest Table 4 protocol: leave-one-out models
// within each language group (pgoModels), and the full-real-C-group model
// for generated programs.
func HwsimStudy(ctx *Context, espCfg core.Config, genN int) (*HwsimStudyResult, error) {
	models, cModel, err := pgoModels(ctx, espCfg)
	if err != nil {
		return nil, err
	}
	entries := corpus.All()
	nReal := len(entries)
	if genN > 0 {
		spec := gencorpus.Spec{Seed: HwsimGenSeed, N: genN, Opt: gencorpus.Options{Prints: true}}
		entries = append(entries, spec.Entries()...)
	}

	perProg := make([][]*hwsim.Counter, len(entries))
	errs := make([]error, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				e := entries[i]
				m := models[e.Name]
				if m == nil {
					m = cModel // generated programs: full-C-group model
				}
				perProg[i], errs[i] = hwsimProgram(e, m)
			}
		}()
	}
	for i := range entries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: hwsim: %s: %w", entries[i].Name, err)
		}
	}

	res := &HwsimStudyResult{
		Warmups:        hwsim.Warmups,
		GenN:           genN,
		Cells:          emptyCells(),
		ProgramESPMiss: make(map[string]float64, nReal),
	}
	if genN > 0 {
		res.GenCells = emptyCells()
	}
	espIdx := matrixIndex("2bit", "esp")
	for i, counters := range perProg {
		cells := res.Cells
		if i >= nReal {
			cells = res.GenCells
		}
		for ci, c := range counters {
			cells[ci].Events += c.Events
			cells[ci].Miss += c.Miss
			for k := range hwsim.Warmups {
				miss, ev := c.WarmMiss(k)
				cells[ci].WarmMiss[k] += miss
				cells[ci].WarmEvents[k] += ev
			}
		}
		if i < nReal {
			res.ProgramESPMiss[entries[i].Name] = counters[espIdx].MissRate()
		}
	}
	return res, nil
}

// emptyCells allocates the zeroed predictor-major matrix.
func emptyCells() []HwsimCell {
	cells := make([]HwsimCell, 0, len(HwsimPredictors)*len(HwsimSeeds))
	for _, p := range HwsimPredictors {
		for _, s := range HwsimSeeds {
			cells = append(cells, HwsimCell{
				Predictor:  p,
				Seed:       s,
				WarmEvents: make([]int64, len(hwsim.Warmups)),
				WarmMiss:   make([]int64, len(hwsim.Warmups)),
			})
		}
	}
	return cells
}

// matrixIndex locates a (predictor, seed) pair in the flat matrix order.
func matrixIndex(pred, seed string) int {
	for i, p := range HwsimPredictors {
		for j, s := range HwsimSeeds {
			if p == pred && s == seed {
				return i*len(HwsimSeeds) + j
			}
		}
	}
	panic("experiments: unknown hwsim matrix entry " + pred + "/" + seed)
}

// hwsimSink builds the predictor matrix when the trace delivers the site
// table (predictor state is sized by site count) and fans every branch
// event out to all counters. It implements interp.TraceSink.
type hwsimSink struct {
	sites    *features.ProgramSites
	srcs     []pgo.ProbSource // HwsimSeeds order; nil = unseeded
	counters []*hwsim.Counter // matrix order; built in BeginTrace
}

func (s *hwsimSink) BeginTrace(refs []ir.BranchRef) {
	n := len(refs)
	hintSets := make([][]bool, len(s.srcs))
	for i, src := range s.srcs {
		if src != nil {
			hintSets[i] = hwsim.Hints(src, s.sites, refs)
		}
	}
	builders := []func(h []bool) hwsim.Predictor{
		func(h []bool) hwsim.Predictor { return hwsim.NewOneBit(n, h) },
		func(h []bool) hwsim.Predictor { return hwsim.NewTwoBit(n, h) },
		func(h []bool) hwsim.Predictor { return hwsim.NewGshare(0, h) },
		func(h []bool) hwsim.Predictor { return hwsim.NewTage(n, h) },
	}
	for _, build := range builders {
		for _, hints := range hintSets {
			s.counters = append(s.counters, hwsim.NewCounter(build(hints)))
		}
	}
}

func (s *hwsimSink) TraceBranch(site int32, taken bool) {
	for _, c := range s.counters {
		c.Observe(site, taken)
	}
}

// hwsimProgram simulates the full matrix over one program: a plain run for
// the perfect-profile hints, then one traced run scoring all counters.
func hwsimProgram(e corpus.Entry, model *core.Model) ([]*hwsim.Counter, error) {
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		return nil, err
	}
	cfg := e.RunConfig()
	prof, err := interp.Run(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("profile run: %w", err)
	}
	sink := &hwsimSink{
		sites: features.Collect(prog),
		srcs: []pgo.ProbSource{
			nil, // unseeded
			hwsim.BTFNT{},
			pgo.NewHeuristic(),
			&pgo.Model{M: model},
			&pgo.Measured{Prof: prof},
		},
	}
	tprof, err := interp.RunTrace(prog, cfg, sink)
	if err != nil {
		return nil, fmt.Errorf("traced run: %w", err)
	}
	// The stream must cover exactly the profiled conditional executions —
	// the CycleCount-style consistency check, applied end to end.
	for _, c := range sink.counters {
		if c.Events != tprof.CondExec {
			return nil, fmt.Errorf("counter %s saw %d events, profile recorded %d",
				c.Pred.Name(), c.Events, tprof.CondExec)
		}
	}
	return sink.counters, nil
}

// Render formats the study: the steady-state matrix, cold-start tables for
// the per-site and shared-table headliners, and the per-program ESP-seeded
// 2-bit rates through the shared per-program renderer.
func (r *HwsimStudyResult) Render() string {
	head := "Hardware co-simulation: mispredict rates by predictor and hint-bit seed\n"
	steady := stats.NewTable(append([]string{"Predictor"}, HwsimSeeds...)...)
	for _, p := range HwsimPredictors {
		row := []interface{}{p}
		for _, s := range HwsimSeeds {
			row = append(row, stats.Pct1(r.cell(p, s).Rate()))
		}
		steady.Row(row...)
	}
	out := head + "\nSteady state (full stream, 46 programs)\n" + steady.String()

	for _, p := range []string{"2bit", "gshare"} {
		warm := stats.NewTable(append([]string{"Warmup"}, HwsimSeeds...)...)
		for k, w := range r.Warmups {
			row := []interface{}{fmt.Sprintf("%d", w)}
			for _, s := range HwsimSeeds {
				row = append(row, stats.Pct1(r.cell(p, s).WarmRate(k)))
			}
			warm.Row(row...)
		}
		out += fmt.Sprintf("\nCold start, %s (first-N-branch mispredict rate)\n", p) + warm.String()
	}
	out += "\nPer-program steady-state mispredict rate, ESP-seeded 2-bit\n" +
		renderPerProgram("Miss", r.ProgramESPMiss, stats.Pct1) + pctFootnote
	return out
}
