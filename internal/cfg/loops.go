package cfg

import (
	"sort"

	"repro/internal/ir"
)

// Loop is a natural loop, identified per Ball and Larus: a back edge u→h
// (where h dominates u) names the loop with header h, and the loop body is
// every block that can reach u without passing through h. Loops sharing a
// header are merged.
type Loop struct {
	Header  int          // dense index of the loop header
	Blocks  map[int]bool // loop body including header
	Latches []int        // sources of the back edges into Header
	Parent  *Loop        // innermost enclosing loop, or nil
	Depth   int          // nesting depth, 1 for outermost
}

// Contains reports whether the loop body contains block i.
func (l *Loop) Contains(i int) bool { return l.Blocks[i] }

// LoopInfo holds all natural loops of a function.
type LoopInfo struct {
	Loops     []*Loop
	byHeader  map[int]*Loop
	innermost []*Loop // innermost loop containing each block, or nil
}

// Loops computes (once) and returns the function's natural-loop information.
func (g *Graph) Loops() *LoopInfo {
	if g.loops == nil {
		g.loops = g.computeLoops()
	}
	return g.loops
}

func (g *Graph) computeLoops() *LoopInfo {
	li := &LoopInfo{byHeader: make(map[int]*Loop)}
	// Find back edges: u -> h where h dominates u (and both reachable).
	for u := 0; u < g.N(); u++ {
		if !g.Reachable(u) {
			continue
		}
		for _, h := range g.Succ[u] {
			if g.Dominates(h, u) {
				loop := li.byHeader[h]
				if loop == nil {
					loop = &Loop{Header: h, Blocks: map[int]bool{h: true}}
					li.byHeader[h] = loop
					li.Loops = append(li.Loops, loop)
				}
				loop.Latches = append(loop.Latches, u)
				// Natural-loop body: backward reachability from u to h.
				stack := []int{u}
				for len(stack) > 0 {
					b := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if loop.Blocks[b] {
						continue
					}
					loop.Blocks[b] = true
					for _, p := range g.Pred[b] {
						if g.Reachable(p) {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Deterministic order: by header index, inner (smaller) loops after the
	// outer loops that contain them; sorting by size descending then header
	// gives a stable parent-assignment order.
	sort.Slice(li.Loops, func(i, j int) bool {
		if len(li.Loops[i].Blocks) != len(li.Loops[j].Blocks) {
			return len(li.Loops[i].Blocks) > len(li.Loops[j].Blocks)
		}
		return li.Loops[i].Header < li.Loops[j].Header
	})
	// Parent links: the smallest strictly-larger loop containing the header.
	// Loops are sorted largest-first, so scanning backward from i finds the
	// tightest enclosing loop first.
	for i, l := range li.Loops {
		for j := i - 1; j >= 0; j-- {
			outer := li.Loops[j]
			if outer != l && outer.Contains(l.Header) && len(outer.Blocks) > len(l.Blocks) {
				l.Parent = outer
				break
			}
		}
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	// Innermost loop per block: the smallest loop containing it.
	li.innermost = make([]*Loop, g.N())
	for _, l := range li.Loops { // largest first, so later (smaller) wins
		for b := range l.Blocks {
			li.innermost[b] = l
		}
	}
	return li
}

// IsHeader reports whether block i is a loop header.
func (li *LoopInfo) IsHeader(i int) bool { return li.byHeader[i] != nil }

// HeaderLoop returns the loop headed by block i, or nil.
func (li *LoopInfo) HeaderLoop(i int) *Loop { return li.byHeader[i] }

// Innermost returns the innermost loop containing block i, or nil.
func (li *LoopInfo) Innermost(i int) *Loop {
	if i < 0 || i >= len(li.innermost) {
		return nil
	}
	return li.innermost[i]
}

// Depth returns the loop-nesting depth of block i (0 if not in a loop).
func (li *LoopInfo) Depth(i int) int {
	if l := li.Innermost(i); l != nil {
		return l.Depth
	}
	return 0
}

// IsBackEdge reports whether the edge u→v is a loop back edge (v is a loop
// header that dominates u).
func (g *Graph) IsBackEdge(u, v int) bool {
	if !g.Reachable(u) {
		return false
	}
	for _, s := range g.Succ[u] {
		if s == v && g.Dominates(v, u) && g.Loops().IsHeader(v) {
			return true
		}
	}
	return false
}

// IsLoopExitEdge reports whether the edge u→v leaves some loop containing u
// (u in loop L, v not in L).
func (g *Graph) IsLoopExitEdge(u, v int) bool {
	for l := g.Loops().Innermost(u); l != nil; l = l.Parent {
		if !l.Contains(v) {
			return true
		}
	}
	return false
}

// maxForwardChain bounds the "unconditionally passes control to" walks below
// so that pathological chains cannot loop forever.
const maxForwardChain = 16

// uncondNext returns the single successor of block i when control leaves i
// unconditionally (implicit fall-through or an unconditional branch), or -1.
// Blocks that end in calls still pass control unconditionally.
func (g *Graph) uncondNext(i int) int {
	if g.Blocks[i].Branch() != nil {
		return -1
	}
	if len(g.Succ[i]) != 1 {
		return -1
	}
	return g.Succ[i][0]
}

// ReachesLoopHeaderUncond reports whether block i is a loop header or
// unconditionally passes control to one (the paper's feature 12: "LH — the
// successor basic block is a loop header or unconditionally passes control
// to a basic block which is a loop header"). This also captures loop
// pre-headers for the Loop Header heuristic.
func (g *Graph) ReachesLoopHeaderUncond(i int) bool {
	li := g.Loops()
	for step := 0; step < maxForwardChain && i >= 0; step++ {
		if li.IsHeader(i) {
			return true
		}
		i = g.uncondNext(i)
	}
	return false
}

// ReachesCallUncond reports whether block i contains a procedure call or
// unconditionally passes control to a block that does (feature 16).
func (g *Graph) ReachesCallUncond(i int) bool {
	for step := 0; step < maxForwardChain && i >= 0; step++ {
		if g.Blocks[i].ContainsCall() {
			return true
		}
		i = g.uncondNext(i)
	}
	return false
}

// ContainsReturn reports whether block i ends in a return or unconditionally
// passes control to a block that does (used by the Return heuristic).
func (g *Graph) ContainsReturn(i int) bool {
	for step := 0; step < maxForwardChain && i >= 0; step++ {
		if t := g.Blocks[i].Terminator(); t != nil && t.Op.Class() == ir.ClassReturn {
			return true
		}
		i = g.uncondNext(i)
	}
	return false
}
