// Package cfg builds control-flow graphs over the IR and provides the
// analyses the paper's predictors rely on: dominators, post-dominators,
// natural loops (using the same definition as Ball and Larus), and a
// pointer-value inference that stands in for the paper's reconstruction of
// abstract syntax trees from program binaries.
package cfg

import (
	"fmt"

	"repro/internal/ir"
)

// Graph is the control-flow graph of a single function. Blocks are indexed
// densely in layout order; use Index/Block to translate between dense
// indices and ir block IDs.
type Graph struct {
	Fn     *ir.Func
	Blocks []*ir.Block // dense order == layout order
	Succ   [][]int     // dense successor indices, taken successor first
	Pred   [][]int     // dense predecessor indices

	idToIdx map[int]int

	// Lazily computed analyses.
	idom  []int
	ipdom []int
	loops *LoopInfo
	ptrs  *PointerInfo
}

// New builds the CFG for fn.
func New(fn *ir.Func) *Graph {
	g := &Graph{
		Fn:      fn,
		Blocks:  append([]*ir.Block(nil), fn.Blocks...),
		idToIdx: make(map[int]int, len(fn.Blocks)),
	}
	for i, b := range g.Blocks {
		g.idToIdx[b.ID] = i
	}
	g.Succ = make([][]int, len(g.Blocks))
	g.Pred = make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, sid := range fn.Succs(b) {
			j, ok := g.idToIdx[sid]
			if !ok {
				panic(fmt.Sprintf("cfg: %s b%d: successor b%d missing", fn.Name, b.ID, sid))
			}
			g.Succ[i] = append(g.Succ[i], j)
			g.Pred[j] = append(g.Pred[j], i)
		}
	}
	return g
}

// N returns the number of blocks.
func (g *Graph) N() int { return len(g.Blocks) }

// Index returns the dense index for an ir block ID.
func (g *Graph) Index(blockID int) int {
	i, ok := g.idToIdx[blockID]
	if !ok {
		panic(fmt.Sprintf("cfg: unknown block id b%d in %s", blockID, g.Fn.Name))
	}
	return i
}

// Block returns the block at dense index i.
func (g *Graph) Block(i int) *ir.Block { return g.Blocks[i] }

// Entry returns the dense index of the entry block (always 0).
func (g *Graph) Entry() int { return 0 }

// TakenSucc returns the dense index of the taken successor of the
// conditional branch ending block i, and the fall-through successor. It
// panics if block i does not end in a conditional branch with both
// successors present.
func (g *Graph) TakenSucc(i int) (taken, fallthru int) {
	b := g.Blocks[i]
	if b.Branch() == nil || len(g.Succ[i]) != 2 {
		panic(fmt.Sprintf("cfg: block b%d of %s is not a two-way branch", b.ID, g.Fn.Name))
	}
	return g.Succ[i][0], g.Succ[i][1]
}

// IsBranchBlock reports whether block i ends in a conditional branch with
// two distinct successors (the two-way branches the paper studies).
func (g *Graph) IsBranchBlock(i int) bool {
	return g.Blocks[i].Branch() != nil && len(g.Succ[i]) == 2 && g.Succ[i][0] != g.Succ[i][1]
}

// reversePostorder returns the blocks reachable from entry in reverse
// postorder of the forward CFG.
func (g *Graph) reversePostorder() []int {
	seen := make([]bool, g.N())
	var order []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range g.Succ[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(g.Entry())
	// Reverse into RPO.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return order
}

// Reachable reports whether block i is reachable from the entry block.
func (g *Graph) Reachable(i int) bool {
	return i == g.Entry() || g.Idom()[i] >= 0
}
