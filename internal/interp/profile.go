// Package interp executes IR programs deterministically and collects the
// dynamic branch profiles that the paper gathered with ATOM on Alpha
// hardware: per-branch executed/taken counts, per-edge transition counts,
// and total instruction counts.
package interp

import (
	"sort"

	"repro/internal/ir"
)

// BranchCount is the dynamic record for one static conditional branch site.
type BranchCount struct {
	Executed int64
	Taken    int64
}

// TakenFraction returns the fraction of executions in which the branch was
// taken (0 if never executed).
func (c BranchCount) TakenFraction() float64 {
	if c.Executed == 0 {
		return 0
	}
	return float64(c.Taken) / float64(c.Executed)
}

// EdgeRef identifies a control-flow edge (ir block IDs) within a function.
type EdgeRef struct {
	Func string
	From int
	To   int
}

// Profile is the result of executing a program: the dynamic behaviour the
// ESP corpus associates with each static branch site.
type Profile struct {
	Program   string
	Insns     int64 // total dynamic instructions executed
	CondExec  int64 // total conditional-branch executions
	CondTaken int64
	Branches  map[ir.BranchRef]*BranchCount
	Edges     map[EdgeRef]int64
	// Calls counts function activations by name (one per entry into the
	// function body, identical on both execution paths). The simulated-cycle
	// model uses it to seed entry-block dynamic counts, which edge counts
	// alone cannot recover.
	Calls map[string]int64
	// Outputs records values passed to the print intrinsics, used by tests
	// to check program semantics.
	Outputs  []int64
	FOutputs []float64
	// Result is main's return value.
	Result int64
}

// Branch returns the count record for a branch site, creating it if needed.
func (p *Profile) Branch(ref ir.BranchRef) *BranchCount {
	c := p.Branches[ref]
	if c == nil {
		c = &BranchCount{}
		p.Branches[ref] = c
	}
	return c
}

// PercentCondBranches returns conditional branches as a percentage of all
// dynamic instructions (column 2 of Table 3).
func (p *Profile) PercentCondBranches() float64 {
	if p.Insns == 0 {
		return 0
	}
	return 100 * float64(p.CondExec) / float64(p.Insns)
}

// PercentTaken returns the percentage of executed conditional branches that
// were taken (column 3 of Table 3).
func (p *Profile) PercentTaken() float64 {
	if p.CondExec == 0 {
		return 0
	}
	return 100 * float64(p.CondTaken) / float64(p.CondExec)
}

// Quantiles returns, for each requested percentage, the minimum number of
// static branch sites that together account for that percentage of all
// executed conditional branches (the Q-50 … Q-100 columns of Table 3).
func (p *Profile) Quantiles(percents []float64) []int {
	counts := make([]int64, 0, len(p.Branches))
	var total int64
	for _, c := range p.Branches {
		if c.Executed > 0 {
			counts = append(counts, c.Executed)
			total += c.Executed
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	out := make([]int, len(percents))
	for pi, pct := range percents {
		threshold := pct / 100 * float64(total)
		var acc int64
		n := 0
		for _, c := range counts {
			if float64(acc) >= threshold {
				break
			}
			acc += c
			n++
		}
		out[pi] = n
	}
	return out
}

// StaticSites returns the number of static conditional branch sites that
// were profiled (executed at least zero times — i.e. all sites registered).
func (p *Profile) StaticSites() int { return len(p.Branches) }

// ExecutedSites returns the number of branch sites executed at least once.
func (p *Profile) ExecutedSites() int {
	n := 0
	for _, c := range p.Branches {
		if c.Executed > 0 {
			n++
		}
	}
	return n
}

// NormalizedWeight returns the branch's execution count divided by the total
// conditional-branch executions of the program — the paper's n_k term.
func (p *Profile) NormalizedWeight(ref ir.BranchRef) float64 {
	if p.CondExec == 0 {
		return 0
	}
	c := p.Branches[ref]
	if c == nil {
		return 0
	}
	return float64(c.Executed) / float64(p.CondExec)
}
