package pgo

import (
	"repro/internal/cfg"
	"repro/internal/codegen"
	"repro/internal/features"
	"repro/internal/ir"
)

// MaxCyclicProb caps a loop's continue probability when deriving its trip
// multiplier, bounding 1/(1-p) the way Wu and Larus cap cyclic
// probabilities: a predicted-certain back edge would otherwise yield an
// infinite frequency and drown every other signal.
const MaxCyclicProb = 0.95

// maxCallWeight caps inter-procedural activation weights so recursive call
// chains cannot overflow the fixpoint.
const maxCallWeight = 1e12

// callDepthIters bounds the call-weight fixpoint; ten rounds saturate any
// corpus call graph (deeper recursion only moves weight already at cap).
const callDepthIters = 10

// Estimate is a whole-program edge profile derived from a probability
// source: the SNIPPETS.md branchProb/loopMultiplier interface materialized
// over the IR.
type Estimate struct {
	Source string
	// Prob is the per-site predicted taken probability.
	Prob map[ir.BranchRef]float64
	// Local maps function → block ID → per-invocation execution frequency
	// (entry = 1), loop bodies amplified by 1/(1-p_continue).
	Local map[string]map[int]float64
	// Weight is each function's estimated activations per program run
	// (main = 1), from a bounded call-graph fixpoint over Local.
	Weight map[string]float64
}

// GlobalFreq is a branch block's estimated whole-run execution count:
// function weight times per-invocation block frequency.
func (e *Estimate) GlobalFreq(ref ir.BranchRef) float64 {
	return e.Weight[ref.Func] * e.Local[ref.Func][ref.Block]
}

// Guidance adapts the estimate for codegen.OptimizeLayout.
func (e *Estimate) Guidance() *codegen.EdgeGuidance {
	return &codegen.EdgeGuidance{Prob: e.Prob, LocalFreq: e.Local}
}

// EstimateProfile propagates the source's branch probabilities to block
// frequencies and function weights over the whole program. ps must be the
// site collection of prog.
func EstimateProfile(prog *ir.Program, ps *features.ProgramSites, src ProbSource) *Estimate {
	est := &Estimate{
		Source: src.Name(),
		Prob:   make(map[ir.BranchRef]float64),
		Local:  make(map[string]map[int]float64, len(prog.Funcs)),
		Weight: make(map[string]float64, len(prog.Funcs)),
	}
	for _, s := range ps.Sites {
		est.Prob[s.Ref] = clampProb(src.Prob(s))
	}
	// Per-invocation block frequencies, function by function.
	graphs := make(map[string]*cfg.Graph, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		g := cfg.New(fn)
		graphs[fn.Name] = g
		freq := propagateFunc(g, est)
		m := make(map[int]float64, g.N())
		for i, f := range freq {
			m[g.Blocks[i].ID] = f
		}
		est.Local[fn.Name] = m
	}
	// Inter-procedural weights: a bounded fixpoint over static call sites
	// weighted by the caller's block frequencies. main is the root with one
	// activation; without a main (library-only IR) every function gets
	// weight 1 so gating still has a scale.
	if prog.FuncByName("main") == nil {
		for _, fn := range prog.Funcs {
			est.Weight[fn.Name] = 1
		}
		return est
	}
	callFreq := make(map[string]map[string]float64, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		out := make(map[string]float64)
		for _, b := range graphs[fn.Name].Blocks {
			bf := est.Local[fn.Name][b.ID]
			if bf == 0 {
				continue
			}
			insns := reachableInsns(b)
			for k := range insns {
				if insns[k].Op == ir.OpBsr {
					out[insns[k].Sym] += bf
				}
			}
		}
		callFreq[fn.Name] = out
	}
	w := map[string]float64{"main": 1}
	for iter := 0; iter < callDepthIters; iter++ {
		next := map[string]float64{"main": 1}
		for caller, outs := range callFreq {
			cw := w[caller]
			if cw == 0 {
				continue
			}
			for callee, f := range outs {
				next[callee] += cw * f
			}
		}
		for k, v := range next {
			if v > maxCallWeight {
				next[k] = maxCallWeight
			}
		}
		w = next
	}
	for _, fn := range prog.Funcs {
		est.Weight[fn.Name] = w[fn.Name]
	}
	return est
}

func clampProb(p float64) float64 {
	switch {
	case p < 0.001:
		return 0.001
	case p > 0.999:
		return 0.999
	}
	return p
}

// reachableInsns returns the prefix of the block's instructions up to and
// including its first terminator — the same reachable region the
// interpreter executes and charges.
func reachableInsns(b *ir.Block) []ir.Instr {
	for k := range b.Insns {
		if b.Insns[k].Op.IsTerminator() {
			return b.Insns[:k+1]
		}
	}
	return b.Insns
}

// propagateFunc computes per-invocation block frequencies (dense indices)
// for one function: local edge probabilities from the source, loop
// multipliers 1/(1-p_continue) applied at headers, and a single
// reverse-postorder pass over the forward (back-edge-free) graph.
func propagateFunc(g *cfg.Graph, est *Estimate) []float64 {
	n := g.N()
	li := g.Loops()
	// Local edge probabilities, dense from → dense to.
	edgeP := make([]map[int]float64, n)
	for i := 0; i < n; i++ {
		succs := g.Succ[i]
		if len(succs) == 0 {
			continue
		}
		ep := make(map[int]float64, len(succs))
		if br := g.Blocks[i].Branch(); br != nil && len(succs) == 2 {
			p := 0.5
			if v, ok := est.Prob[ir.BranchRef{Func: g.Fn.Name, Block: g.Blocks[i].ID}]; ok {
				p = v
			}
			ep[succs[0]] += p // taken successor first
			ep[succs[1]] += 1 - p
		} else {
			for _, s := range succs {
				ep[s] += 1.0 / float64(len(succs))
			}
		}
		edgeP[i] = ep
	}
	// Loop multipliers: the strongest back edge names the continue
	// probability; the header's frequency is amplified by the implied
	// expected trip count.
	mult := make([]float64, n)
	for i := range mult {
		mult[i] = 1
	}
	for _, l := range li.Loops {
		var q float64
		for _, u := range l.Latches {
			if p, ok := edgeP[u][l.Header]; ok && p > q {
				q = p
			}
		}
		if q > MaxCyclicProb {
			q = MaxCyclicProb
		}
		mult[l.Header] = 1 / (1 - q)
	}
	// Reverse postorder over forward edges only (back edges removed): a
	// topological order for the reducible graphs structured lowering emits.
	order := forwardRPO(g)
	freq := make([]float64, n)
	for _, v := range order {
		f := freq[v]
		if v == g.Entry() {
			f += 1
		}
		for _, u := range g.Pred[v] {
			if g.Dominates(v, u) {
				continue // back edge
			}
			if p, ok := edgeP[u][v]; ok {
				f += freq[u] * p
			}
		}
		freq[v] = f * mult[v]
	}
	return freq
}

// forwardRPO returns the blocks reachable from entry in reverse postorder
// of the graph with back edges removed.
func forwardRPO(g *cfg.Graph) []int {
	seen := make([]bool, g.N())
	var order []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range g.Succ[u] {
			if !seen[v] && !g.Dominates(v, u) {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(g.Entry())
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return order
}
