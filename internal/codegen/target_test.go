package codegen

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// compileSrc compiles a source string for a target.
func compileSrc(t *testing.T, src string, tgt Target) *ir.Program {
	t.Helper()
	ast, err := minic.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(ast, ir.LangC, tgt)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// countOps tallies opcode occurrences in a program.
func countOps(p *ir.Program) map[ir.Op]int {
	out := map[ir.Op]int{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insns {
				out[b.Insns[i].Op]++
			}
		}
	}
	return out
}

func TestCmovConversionEmitsCmov(t *testing.T) {
	src := `
int main() {
	int x;
	int y;
	x = __input(0);
	y = 0;
	if (x > 3) { y = x; }
	if (x > 5) { y = 1; } else { y = 2; }
	return y;
}`
	plain := countOps(compileSrc(t, src, AlphaCC))
	cmov := countOps(compileSrc(t, src, AlphaCCv2))
	if plain[ir.OpCmovNe] != 0 {
		t.Error("baseline target emitted cmov")
	}
	if cmov[ir.OpCmovNe] < 2 {
		t.Errorf("cmov target emitted %d cmovs, want >= 2", cmov[ir.OpCmovNe])
	}
	// Conversion removes the conditional branches of both ifs.
	plainBranches, cmovBranches := 0, 0
	for op, n := range plain {
		if op.IsCondBranch() {
			plainBranches += n
		}
	}
	for op, n := range cmov {
		if op.IsCondBranch() {
			cmovBranches += n
		}
	}
	if cmovBranches >= plainBranches {
		t.Errorf("cmov target has %d branches, baseline %d", cmovBranches, plainBranches)
	}
}

func TestCmovFlattensLogicalConditions(t *testing.T) {
	src := `
int main() {
	int a;
	int b;
	int y;
	a = __input(0);
	b = __input(1);
	y = 0;
	if (a > 1 && b > 2) { y = 7; }
	return y;
}`
	ops := countOps(compileSrc(t, src, AlphaCCv2))
	if ops[ir.OpCmovNe] == 0 {
		t.Error("&&-condition did not convert to cmov")
	}
	if ops[ir.OpAndQ] == 0 {
		t.Error("flattened condition must use a bitwise and")
	}
}

func TestCmovRefusesUnsafeSpeculation(t *testing.T) {
	cases := []string{
		// Loads through pointers must not be speculated.
		`int g; int main() { int* p; int y; p = &g; y = 0;
		 if (__input(0) > 0) { y = *p; } return y; }`,
		// Calls must not be duplicated or speculated.
		`int f() { return 1; } int main() { int y; y = 0;
		 if (__input(0) > 0) { y = f(); } return y; }`,
		// Division can fault.
		`int main() { int y; int d; d = __input(0); y = 0;
		 if (d != 0) { y = 100 / d; } return y; }`,
	}
	for i, src := range cases {
		ops := countOps(compileSrc(t, src, AlphaCCv2))
		if ops[ir.OpCmovNe]+ops[ir.OpCmovEq] != 0 {
			t.Errorf("case %d: unsafe pattern converted to cmov", i)
		}
	}
}

func TestMIPSBranchForms(t *testing.T) {
	src := `
int main() {
	int a;
	int b;
	a = __input(0);
	b = __input(1);
	if (a == b) { return 1; }
	if (a != 7) { return 2; }
	if (a == 0) { return 3; }
	return 0;
}`
	alpha := countOps(compileSrc(t, src, AlphaCC))
	mips := countOps(compileSrc(t, src, MIPSCC))
	if alpha[ir.OpBeq2]+alpha[ir.OpBne2] != 0 {
		t.Error("Alpha target emitted two-register branches")
	}
	if mips[ir.OpBeq2]+mips[ir.OpBne2] < 2 {
		t.Errorf("MIPS target emitted %d two-register branches, want >= 2 (a==b and a!=7)",
			mips[ir.OpBeq2]+mips[ir.OpBne2])
	}
	// Comparisons against zero stay direct on both (possibly negated by the
	// if-statement's branch-on-false polarity).
	if mips[ir.OpBeq]+mips[ir.OpBne] == 0 {
		t.Error("MIPS target must still branch on zero directly")
	}
}

func TestMaterializeCompares(t *testing.T) {
	src := `
int main() {
	int x;
	x = __input(0);
	if (x < 0) { return 1; }
	return 0;
}`
	direct := countOps(compileSrc(t, src, AlphaCC))
	mat := countOps(compileSrc(t, src, AlphaGCC))
	if direct[ir.OpBlt]+direct[ir.OpBge] == 0 {
		t.Error("default target must branch on sign directly")
	}
	if mat[ir.OpBlt]+mat[ir.OpBge] != 0 {
		t.Error("materializing target must not use direct sign branches")
	}
	if mat[ir.OpCmpLt] == 0 {
		t.Error("materializing target must emit an explicit compare")
	}
}

func TestLoopInversionLayout(t *testing.T) {
	src := `
int main() {
	int i;
	int n;
	int s;
	n = __input(0);
	s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}`
	// Inverted (default): the loop-iteration branch's taken edge is a back
	// edge. (The bound is hoisted so the condition is pure and eligible.)
	backEdges := func(tgt Target) int {
		prog := compileSrc(t, src, tgt)
		g := cfg.New(prog.FuncByName("main"))
		n := 0
		for i := 0; i < g.N(); i++ {
			if !g.IsBranchBlock(i) {
				continue
			}
			taken, _ := g.TakenSucc(i)
			if g.IsBackEdge(i, taken) {
				n++
			}
		}
		return n
	}
	if got := backEdges(AlphaCC); got != 1 {
		t.Errorf("inverted loop: %d conditional back-edge branches, want 1", got)
	}
	if got := backEdges(AlphaGCC); got != 0 {
		t.Errorf("no-inversion target: %d conditional back-edge branches, want 0", got)
	}
}

func TestLoopInversionSkipsImpureConditions(t *testing.T) {
	// A condition with a call must not be evaluated twice.
	src := `
int calls;
int cond() { calls = calls + 1; return calls < 5; }
int main() {
	while (cond()) { }
	return calls;
}`
	prog := compileSrc(t, src, AlphaCC)
	ps, err := runProgram(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Result != 5 {
		t.Errorf("impure loop condition ran %d times, want 5", ps.Result)
	}
}

func TestUnrollingStructure(t *testing.T) {
	src := `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 100; i = i + 1) { s = s + i; }
	return s;
}`
	base := compileSrc(t, src, AlphaCC)
	gem := compileSrc(t, src, AlphaGEM)
	// Unrolling replicates the body: the GEM build is visibly larger.
	if gem.NumInsns() <= base.NumInsns() {
		t.Errorf("unrolled build not larger: %d vs %d", gem.NumInsns(), base.NumInsns())
	}
	if gem.NumCondBranches() <= base.NumCondBranches() {
		t.Error("unrolling must add exit-test branches")
	}
	// And both must compute the same sum.
	b, err := runProgram(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := runProgram(gem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Result != g.Result || b.Result != 4950 {
		t.Errorf("results differ: %d vs %d", b.Result, g.Result)
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	// A deep expression under a tiny temp pool must still compile (via
	// spills) and compute the right value.
	src := `
int main() {
	int a;
	a = ((1 + 2) * (3 + 4) + (5 + 6) * (7 + 8)) * ((2 + 3) * (4 + 5) + (6 + 7) * (8 + 9));
	return a;
}`
	tiny := Target{Name: "tiny", ISA: ISAAlpha, IntTemps: 3, FloatTemps: 3}
	prog := compileSrc(t, src, tiny)
	ops := countOps(prog)
	if ops[ir.OpStq] == 0 {
		t.Error("tiny register file produced no spill stores")
	}
	ps, err := runProgram(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(((1+2)*(3+4) + (5+6)*(7+8)) * ((2+3)*(4+5) + (6+7)*(8+9)))
	if ps.Result != want {
		t.Errorf("spilled expression = %d, want %d", ps.Result, want)
	}
}

func TestRegSaveStoresAreRealStores(t *testing.T) {
	src := `
int f(int x) { return x + 1; }
int main() { return f(41); }`
	prog := compileSrc(t, src, MIPSCC)
	// The register save area must exist and be stored through a non-SP base.
	if prog.GlobalByName(".regsave") == nil {
		t.Fatal("MIPS target did not allocate the register save area")
	}
	found := false
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insns {
				in := &b.Insns[i]
				if in.Op == ir.OpStq && in.A != ir.RegSP {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no memory (non-stack) register-save store emitted")
	}
	ps, err := runProgram(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Result != 42 {
		t.Errorf("result = %d", ps.Result)
	}
}

func TestISAString(t *testing.T) {
	if ISAAlpha.String() != "Alpha" || ISAMIPS.String() != "MIPS" {
		t.Error("ISA names wrong")
	}
}

func TestFindCompilerConfigs(t *testing.T) {
	names := map[string]bool{}
	// Default aliases the first compiler configuration by design.
	if Default.Name != AlphaCC.Name {
		t.Errorf("Default target is %q, want the cc baseline", Default.Name)
	}
	for _, tgt := range append([]Target{MIPSCC}, Compilers...) {
		if tgt.Name == "" || names[tgt.Name] {
			t.Errorf("target with empty or duplicate name: %+v", tgt)
		}
		names[tgt.Name] = true
		if tgt.intTemps() < 3 || tgt.floatTemps() < 3 {
			t.Errorf("%s: temp pools too small for codegen", tgt.Name)
		}
	}
}

// runProgram executes a compiled program with the default configuration.
func runProgram(p *ir.Program, input []int64) (*interp.Profile, error) {
	return interp.Run(p, interp.Config{Input: input, Seed: 1})
}
