package experiments

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stats"
)

// Table3Row is one program's measured attributes (Table 3 of the paper).
type Table3Row struct {
	Program   string
	Suite     corpus.Suite
	Insns     int64
	PctCond   float64
	PctTaken  float64
	Quantiles []int // Q-50, Q-75, Q-90, Q-95, Q-99, Q-100
	Static    int
}

// Table3Result is the full table.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Percents are the quantile levels of Table 3.
var Table3Percents = []float64{50, 75, 90, 95, 99, 100}

// Table3 measures the attributes of every traced program.
func Table3(ctx *Context) (*Table3Result, error) {
	data, err := ctx.StudyData(codegen.Default)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	entries := corpus.Study()
	for i, pd := range data {
		prof := pd.Profile
		res.Rows = append(res.Rows, Table3Row{
			Program:   pd.Name,
			Suite:     entries[i].Suite,
			Insns:     prof.Insns,
			PctCond:   prof.PercentCondBranches(),
			PctTaken:  prof.PercentTaken(),
			Quantiles: prof.Quantiles(Table3Percents),
			Static:    prof.StaticSites(),
		})
	}
	return res, nil
}

// Render formats the table in the paper's layout.
func (r *Table3Result) Render() string {
	t := stats.NewTable("Program", "# Insns Traced", "% Cond Branches", "% Taken",
		"Q-50", "Q-75", "Q-90", "Q-95", "Q-99", "Q-100", "Static")
	var lastSuite corpus.Suite
	for i, row := range r.Rows {
		if i > 0 && row.Suite != lastSuite {
			t.Separator()
		}
		lastSuite = row.Suite
		t.Row(row.Program, row.Insns,
			fmt.Sprintf("%.2f", row.PctCond), fmt.Sprintf("%.2f", row.PctTaken),
			row.Quantiles[0], row.Quantiles[1], row.Quantiles[2],
			row.Quantiles[3], row.Quantiles[4], row.Quantiles[5], row.Static)
	}
	return "Table 3: measured attributes of the traced programs\n" + t.String()
}

// dataByName indexes analysis results by program name.
func dataByName(data []*core.ProgramData) map[string]*core.ProgramData {
	out := make(map[string]*core.ProgramData, len(data))
	for _, pd := range data {
		out[pd.Name] = pd
	}
	return out
}
