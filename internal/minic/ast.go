package minic

// Type is a MinC type: a base kind plus a pointer depth, with an optional
// array length for declared arrays (arrays decay to pointers in
// expressions).
type Type struct {
	Base     BaseKind
	PtrDepth int
	// ArrayLen > 0 marks a declared array of the element type described by
	// Base/PtrDepth; such a type only appears on declarations.
	ArrayLen int64
}

// BaseKind is a primitive type kind.
type BaseKind int

// Base kinds.
const (
	BaseInvalid BaseKind = iota
	BaseInt
	BaseFloat
	BaseVoid
	// BaseNull is the type of the 'null' literal, assignable to and
	// comparable with any pointer type.
	BaseNull
)

// Common types.
var (
	TypeInt    = Type{Base: BaseInt}
	TypeFloat  = Type{Base: BaseFloat}
	TypeVoid   = Type{Base: BaseVoid}
	TypeNull   = Type{Base: BaseNull}
	TypeIntPtr = Type{Base: BaseInt, PtrDepth: 1}
)

// IsPointer reports whether the type is a pointer (or the null constant).
func (t Type) IsPointer() bool { return t.PtrDepth > 0 || t.Base == BaseNull }

// IsArray reports whether the type is a declared array.
func (t Type) IsArray() bool { return t.ArrayLen > 0 }

// IsNumeric reports whether the type is int or float (non-pointer).
func (t Type) IsNumeric() bool {
	return t.PtrDepth == 0 && (t.Base == BaseInt || t.Base == BaseFloat)
}

// IsFloat reports whether the type is the scalar float type.
func (t Type) IsFloat() bool { return t.Base == BaseFloat && t.PtrDepth == 0 }

// IsInt reports whether the type is the scalar int type.
func (t Type) IsInt() bool { return t.Base == BaseInt && t.PtrDepth == 0 }

// IsVoid reports whether the type is void.
func (t Type) IsVoid() bool { return t.Base == BaseVoid && t.PtrDepth == 0 }

// Decay converts a declared array type to the corresponding pointer type;
// other types are returned unchanged.
func (t Type) Decay() Type {
	if t.IsArray() {
		return Type{Base: t.Base, PtrDepth: t.PtrDepth + 1}
	}
	return t
}

// Elem returns the pointee type of a pointer. It panics on non-pointers.
func (t Type) Elem() Type {
	if t.IsArray() {
		return Type{Base: t.Base, PtrDepth: t.PtrDepth}
	}
	if t.PtrDepth == 0 {
		panic("minic: Elem of non-pointer type " + t.String())
	}
	return Type{Base: t.Base, PtrDepth: t.PtrDepth - 1}
}

// Equal reports structural equality after array decay.
func (t Type) Equal(u Type) bool {
	td, ud := t.Decay(), u.Decay()
	return td.Base == ud.Base && td.PtrDepth == ud.PtrDepth
}

// String renders the type in C-like syntax.
func (t Type) String() string {
	var base string
	switch t.Base {
	case BaseInt:
		base = "int"
	case BaseFloat:
		base = "float"
	case BaseVoid:
		base = "void"
	case BaseNull:
		return "null"
	default:
		base = "invalid"
	}
	for i := 0; i < t.PtrDepth; i++ {
		base += "*"
	}
	if t.IsArray() {
		base += "[]"
	}
	return base
}

// --- Declarations -----------------------------------------------------------

// Program is a parsed compilation unit.
type Program struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // nil if none; not permitted on arrays
	// Sym is filled in by the checker for locals and parameters.
	Sym *Symbol
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []*VarDecl
	Body   *BlockStmt
	// Filled in by the checker:
	FrameSize  int64 // stack frame size in words
	NIntParams int
	NFltParams int
}

// --- Statements -------------------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoStmt is a do/while loop (condition tested after the body).
type DoStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Pos  Pos
	Init Stmt // nil, ExprStmt or AssignStmt
	Cond Expr // nil means true
	Post Stmt // nil, ExprStmt or AssignStmt
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void returns
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// AssignStmt stores Value into the lvalue Target.
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// --- Expressions ------------------------------------------------------------

// Expr is an expression node. The checker records the result type on each
// node via SetType; Type reads it back during code generation.
type Expr interface {
	exprNode()
	ExprPos() Pos
	Type() Type
	SetType(Type)
}

type typed struct{ typ Type }

// Type returns the checked type of the expression.
func (t *typed) Type() Type { return t.typ }

// SetType records the checked type of the expression.
func (t *typed) SetType(u Type) { t.typ = u }

// IntLit is an integer literal.
type IntLit struct {
	typed
	Pos   Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typed
	Pos   Pos
	Value float64
}

// NullLit is the null pointer literal.
type NullLit struct {
	typed
	Pos Pos
}

// Ident is a variable reference.
type Ident struct {
	typed
	Pos  Pos
	Name string
	// Sym is resolved by the checker.
	Sym *Symbol
}

// BinOp kinds.
type BinOpKind int

// Binary operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // short-circuit &&
	OpOr  // short-circuit ||
)

var binOpNames = map[BinOpKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

// String renders the operator.
func (k BinOpKind) String() string { return binOpNames[k] }

// IsComparison reports whether the operator yields a boolean int from a
// relational test.
func (k BinOpKind) IsComparison() bool { return k >= OpEq && k <= OpGe }

// BinExpr is a binary expression.
type BinExpr struct {
	typed
	Pos  Pos
	Op   BinOpKind
	L, R Expr
}

// UnOpKind enumerates unary operators.
type UnOpKind int

// Unary operators.
const (
	OpNeg   UnOpKind = iota // -x
	OpNot                   // !x
	OpDeref                 // *p
	OpAddr                  // &lv
)

// UnExpr is a unary expression.
type UnExpr struct {
	typed
	Pos Pos
	Op  UnOpKind
	X   Expr
}

// IndexExpr is a[i] where a is an array or pointer.
type IndexExpr struct {
	typed
	Pos Pos
	X   Expr
	Idx Expr
}

// CallExpr is a function call.
type CallExpr struct {
	typed
	Pos  Pos
	Name string
	Args []Expr
	// Builtin is non-zero for the __-prefixed intrinsics.
	Builtin BuiltinKind
	// Decl is the resolved callee for non-builtin calls.
	Decl *FuncDecl
}

// CastExpr is (type) x.
type CastExpr struct {
	typed
	Pos Pos
	To  Type
	X   Expr
}

// BuiltinKind enumerates the built-in functions.
type BuiltinKind int

// Builtins (BuiltinNone means a regular call).
const (
	BuiltinNone BuiltinKind = iota
	BuiltinAlloc
	BuiltinInput
	BuiltinPrint
	BuiltinPrintF
	BuiltinRand
)

func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*NullLit) exprNode()   {}
func (*Ident) exprNode()     {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*IndexExpr) exprNode() {}
func (*CallExpr) exprNode()  {}
func (*CastExpr) exprNode()  {}

// ExprPos implementations.
func (e *IntLit) ExprPos() Pos    { return e.Pos }
func (e *FloatLit) ExprPos() Pos  { return e.Pos }
func (e *NullLit) ExprPos() Pos   { return e.Pos }
func (e *Ident) ExprPos() Pos     { return e.Pos }
func (e *BinExpr) ExprPos() Pos   { return e.Pos }
func (e *UnExpr) ExprPos() Pos    { return e.Pos }
func (e *IndexExpr) ExprPos() Pos { return e.Pos }
func (e *CallExpr) ExprPos() Pos  { return e.Pos }
func (e *CastExpr) ExprPos() Pos  { return e.Pos }

// Symbol is a resolved variable: a global, parameter, or local.
type Symbol struct {
	Name   string
	Type   Type
	Global bool
	// FrameOff is the stack-frame word offset for locals and parameters.
	FrameOff int64
	// ParamIdx is the parameter index (or -1 for non-parameters).
	ParamIdx int
}
