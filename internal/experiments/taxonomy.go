package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/hwsim"
	"repro/internal/interp"
	"repro/internal/stats"
)

// TaxonomyRow is one program's branch-predictability taxonomy, aggregated
// execution-weighted over its branch sites (hwsim.Taxonomy).
type TaxonomyRow struct {
	Program   string       `json:"program"`
	Suite     corpus.Suite `json:"suite,omitempty"`
	Sites     int          `json:"sites"`
	Events    int64        `json:"events"`
	Entropy   float64      `json:"entropy"`
	Bias      float64      `json:"bias"`
	SelfAgree float64      `json:"self_agree"`
	PrevAgree float64      `json:"prev_agree"`
}

// TaxonomyResult is the predictability-taxonomy corpus study: per-branch
// outcome entropy, bias, lag-1 self-correlation, and previous-branch
// correlation, streamed from one traced run per program. It quantifies the
// structure the hwsim predictors exploit — low entropy favors static hints
// and per-site counters, high inter-branch agreement favors global history.
type TaxonomyResult struct {
	Rows []TaxonomyRow `json:"rows"`
	// Corpus is the event-weighted aggregate over the real programs.
	Corpus TaxonomyRow `json:"corpus"`
	GenN   int         `json:"gen_n"`
}

// TaxonomyStudy computes the taxonomy over all 46 corpus programs plus
// genN generated programs (seed HwsimGenSeed, all mixes).
func TaxonomyStudy(ctx *Context, genN int) (*TaxonomyResult, error) {
	entries := corpus.All()
	nReal := len(entries)
	if genN > 0 {
		spec := gencorpus.Spec{Seed: HwsimGenSeed, N: genN, Opt: gencorpus.Options{Prints: true}}
		entries = append(entries, spec.Entries()...)
	}

	rows := make([]TaxonomyRow, len(entries))
	errs := make([]error, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rows[i], errs[i] = taxonomyRow(entries[i])
			}
		}()
	}
	for i := range entries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: taxonomy: %s: %w", entries[i].Name, err)
		}
	}

	res := &TaxonomyResult{Rows: rows, GenN: genN}
	var ev float64
	for i := 0; i < nReal; i++ {
		row := &rows[i]
		w := float64(row.Events)
		res.Corpus.Sites += row.Sites
		res.Corpus.Events += row.Events
		res.Corpus.Entropy += w * row.Entropy
		res.Corpus.Bias += w * row.Bias
		res.Corpus.SelfAgree += w * row.SelfAgree
		res.Corpus.PrevAgree += w * row.PrevAgree
		ev += w
	}
	if ev > 0 {
		res.Corpus.Entropy /= ev
		res.Corpus.Bias /= ev
		res.Corpus.SelfAgree /= ev
		res.Corpus.PrevAgree /= ev
	}
	res.Corpus.Program = "Corpus (weighted)"
	return res, nil
}

// taxonomyRow streams one program's outcome trace through the taxonomy sink.
func taxonomyRow(e corpus.Entry) (TaxonomyRow, error) {
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		return TaxonomyRow{}, err
	}
	var tax hwsim.Taxonomy
	prof, err := interp.RunTrace(prog, e.RunConfig(), &tax)
	if err != nil {
		return TaxonomyRow{}, err
	}
	sum := tax.Summarize()
	if sum.Events != prof.CondExec {
		return TaxonomyRow{}, fmt.Errorf("taxonomy saw %d events, profile recorded %d",
			sum.Events, prof.CondExec)
	}
	return TaxonomyRow{
		Program:   e.Name,
		Suite:     e.Suite,
		Sites:     sum.Sites,
		Events:    sum.Events,
		Entropy:   sum.Entropy,
		Bias:      sum.Bias,
		SelfAgree: sum.SelfAgree,
		PrevAgree: sum.PrevAgree,
	}, nil
}

// f3 renders a small absolute quantity (entropy bits) with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Render formats the taxonomy: the per-program table (suite-separated, with
// the weighted corpus aggregate), then per-program entropy through the
// shared per-program renderer.
func (r *TaxonomyResult) Render() string {
	t := stats.NewTable("Program", "Sites", "Events", "Entropy", "Bias", "SelfAgree", "PrevAgree")
	emit := func(row TaxonomyRow) {
		t.Row(row.Program, row.Sites, row.Events, f3(row.Entropy),
			stats.Pct1(row.Bias), stats.Pct1(row.SelfAgree), stats.Pct1(row.PrevAgree))
	}
	var lastSuite corpus.Suite
	for i, row := range r.Rows {
		if i > 0 && row.Suite != lastSuite {
			t.Separator()
		}
		lastSuite = row.Suite
		emit(row)
	}
	t.Separator()
	emit(r.Corpus)
	entropy := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		if row.Suite != corpus.SuiteGenerated {
			entropy[row.Program] = row.Entropy
		}
	}
	return "Branch predictability taxonomy (entropy in bits; bias and agreement in %)\n" +
		t.String() +
		"\nPer-program execution-weighted branch entropy (bits)\n" +
		renderPerProgram("Entropy", entropy, f3)
}
