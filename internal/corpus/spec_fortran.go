package corpus

import "repro/internal/ir"

// The SPEC92 Fortran suite: doduc, fpppp, hydro2d, mdljsp2, nasa7, ora,
// spice, su2cor, swm256, tomcatv, wave5. The analogs are written in the
// Fortran dialect of the corpus — counted loops over arrays, no pointers —
// and are tagged LangFortran (feature 7 of the static feature set).
// tomcatv reproduces the Figure 2 kernel: a mesh-relaxation loop whose
// residual-maximum tests (FABS/compare/branch) go one way essentially
// always, and whose three hot blocks carry most of the program's edge
// transitions.

func init() {
	register(Entry{
		Name: "doduc", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 301,
		About: "nuclear reactor Monte Carlo: event sampling with near-50/50 data-dependent branches",
		Input: []int64{5200},
		Source: `
// doduc: track particles through material slabs.
float flux[64];

int main() {
	int particles;
	int p;
	int absorbed;
	int escaped;
	int scattered;
	particles = __input(0);
	absorbed = 0;
	escaped = 0;
	scattered = 0;
	int k;
	for (k = 0; k < 64; k = k + 1) { flux[k] = 0.0; }
	for (p = 0; p < particles; p = p + 1) {
		int cell;
		float energy;
		cell = 32;
		energy = 1.0 + (float) (__rand() % 100) / 50.0;
		while (cell >= 0 && cell < 64 && energy > 0.05) {
			int ev;
			flux[cell] = flux[cell] + lib_absf(energy);
			ev = lib_randrange(0, 100);
			if (ev < 46) {
				// Scatter: lose energy, random direction.
				energy = energy * 0.7;
				scattered = scattered + 1;
				if (__rand() % 2 == 0) { cell = cell + 1; } else { cell = cell - 1; }
			} else if (ev < 54) {
				absorbed = absorbed + 1;
				energy = 0.0;
			} else {
				// Stream to the next cell.
				if (__rand() % 2 == 0) { cell = cell + 1; } else { cell = cell - 1; }
			}
		}
		if (cell < 0 || cell >= 64) { escaped = escaped + 1; }
	}
	__print(absorbed);
	__print(escaped);
	__print(scattered);
	return 0;
}
`})

	register(Entry{
		Name: "fpppp", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 302,
		About: "two-electron integrals: long straight-line FP blocks with sparse, hard-to-predict branches (the paper's worst heuristic program, 53% APHC miss)",
		Input: []int64{340},
		Source: `
// fpppp: evaluate integral batches; branch only on magnitude tests that are
// close to 50/50, buried in straight-line FP code.
float gout[128];

int main() {
	int batches;
	int b;
	float total;
	int small;
	int large;
	batches = __input(0);
	total = 0.0;
	small = 0;
	large = 0;
	for (b = 0; b < batches; b = b + 1) {
		int i;
		for (i = 0; i < 16; i = i + 1) {
			float p;
			float q;
			float r;
			float s;
			float t;
			p = (float) (__rand() % 1000) / 500.0 - 1.0;
			q = (float) (__rand() % 1000) / 500.0 - 1.0;
			r = p * q * 0.5 + p * 0.25 - q * 0.125;
			s = r * r + p * q;
			t = s * 0.3333 + r * 0.5 - p * 0.0625;
			t = t + s * r - q * p * 0.2;
			t = t * 0.75 + (p + q + r + s) * 0.0125;
			gout[i * 8] = t;
			// Magnitude classification: nearly even split.
			t = lib_absf(t);
			if (t > 0.29) {
				large = large + 1;
				total = total + t;
			} else {
				small = small + 1;
				total = total + t * 0.5;
			}
			if (p > q) {
				gout[i * 8 + 1] = p - q;
			} else {
				gout[i * 8 + 1] = q - p;
			}
			// Shell-pair screening: three more near-even tests.
			if (p * q > 0.0) {
				gout[i * 8 + 2] = p * q;
			} else {
				gout[i * 8 + 2] = 0.0 - p * q;
			}
			if (s > r) {
				gout[i * 8 + 3] = s - r;
			}
			if (p + q > r + s) {
				gout[i * 8 + 4] = p + q - r - s;
			} else if (p - q < r - s) {
				gout[i * 8 + 5] = r - s - p + q;
			}
		}
		// Batch-level symmetry reduction.
		int half;
		half = 0;
		for (i = 0; i < 8; i = i + 1) {
			if (lib_maxf(gout[i * 8], 0.0) > gout[(15 - i) * 8]) { half = half + 1; }
		}
		if (half > 4) { total = total + 0.01; }
	}
	__printf(total);
	__print(small);
	__print(large);
	return 0;
}
`})

	register(Entry{
		Name: "hydro2d", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 303,
		About: "astrophysical hydrodynamics: 2D stencil sweeps, ~73% taken",
		Input: []int64{26, 34},
		Source: `
// hydro2d: relax a 2D grid with a Navier-Stokes-ish stencil.
float u[1600];
float un[1600];

int main() {
	int steps;
	int dim;
	int s;
	float sum;
	steps = __input(0);
	dim = __input(1);
	int i;
	int j;
	for (i = 0; i < dim * dim; i = i + 1) {
		u[i] = (float) (__rand() % 100) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				float v;
				v = 0.25 * (u[(i - 1) * dim + j] + u[(i + 1) * dim + j]
				          + u[i * dim + j - 1] + u[i * dim + j + 1]);
				// Flux limiter: occasionally clamps.
				v = lib_minf(v, 1.0);
				un[i * dim + j] = v;
			}
		}
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				u[i * dim + j] = un[i * dim + j];
			}
		}
	}
	sum = 0.0;
	for (i = 0; i < dim * dim; i = i + 1) { sum = sum + u[i]; }
	__printf(sum);
	return 0;
}
`})

	register(Entry{
		Name: "mdljsp2", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 304,
		About: "molecular dynamics: pairwise interactions with a cutoff test that usually passes (~84% taken)",
		Input: []int64{9, 54},
		Source: `
// mdljsp2: Lennard-Jones-ish particle interactions inside a cutoff radius.
float px[64];
float py[64];
float fx[64];
float fy[64];

int main() {
	int steps;
	int natoms;
	int s;
	float virial;
	int inside;
	int outside;
	steps = __input(0);
	natoms = __input(1);
	virial = 0.0;
	inside = 0;
	outside = 0;
	int i;
	for (i = 0; i < natoms; i = i + 1) {
		px[i] = (float) (__rand() % 1000) / 100.0;
		py[i] = (float) (__rand() % 1000) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		int j;
		for (i = 0; i < natoms; i = i + 1) {
			fx[i] = 0.0;
			fy[i] = 0.0;
		}
		for (i = 0; i < natoms; i = i + 1) {
			for (j = i + 1; j < natoms; j = j + 1) {
				float dx;
				float dy;
				float r2;
				dx = px[i] - px[j];
				dy = py[i] - py[j];
				r2 = dx * dx + dy * dy;
				// Generous cutoff: most pairs interact.
				if (r2 < 64.0) {
					float inv;
					float f;
					inv = 1.0 / (r2 + 0.1);
					f = inv * inv - 0.01 * inv;
					fx[i] = fx[i] + f * dx;
					fy[i] = fy[i] + f * dy;
					fx[j] = fx[j] - f * dx;
					fy[j] = fy[j] - f * dy;
					virial = virial + f * r2;
					inside = inside + 1;
				} else {
					outside = outside + 1;
				}
			}
		}
		for (i = 0; i < natoms; i = i + 1) {
			px[i] = px[i] + fx[i] * 0.001;
			py[i] = py[i] + fy[i] * 0.001;
			// Periodic box: wrap coordinates that drift out.
			if (px[i] < 0.0) { px[i] = px[i] + 10.0; }
			if (px[i] >= 10.0) { px[i] = px[i] - 10.0; }
			if (py[i] < 0.0) { py[i] = py[i] + 10.0; }
			if (py[i] >= 10.0) { py[i] = py[i] - 10.0; }
		}
		// Temperature rescaling every few steps.
		if (s % 4 == 3) {
			float ke;
			ke = 0.0;
			for (i = 0; i < natoms; i = i + 1) {
				ke = ke + fx[i] * fx[i] + fy[i] * fy[i];
			}
			if (lib_sqrtf(ke) > 10.0) {
				for (i = 0; i < natoms; i = i + 1) {
					fx[i] = fx[i] * 0.5;
					fy[i] = fy[i] * 0.5;
				}
			}
		}
	}
	__printf(virial);
	__print(inside);
	__print(outside);
	return 0;
}
`})

	register(Entry{
		Name: "nasa7", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 305,
		About: "seven NASA kernels: matrix multiply, FFT butterfly, gaussian elimination passes; ~79% taken",
		Input: []int64{9, 18},
		Source: `
// nasa7: a rotation of numeric kernels over shared matrices.
float ma[400];
float mb[400];
float mc[400];

int main() {
	int reps;
	int dim;
	int r;
	float check;
	reps = __input(0);
	dim = __input(1);
	check = 0.0;
	int i;
	int j;
	int k;
	for (i = 0; i < dim * dim; i = i + 1) {
		ma[i] = (float) (i % 7) / 7.0;
		mb[i] = (float) (i % 5) / 5.0;
	}
	for (r = 0; r < reps; r = r + 1) {
		// Kernel 1: matrix multiply.
		for (i = 0; i < dim; i = i + 1) {
			for (j = 0; j < dim; j = j + 1) {
				float s;
				s = 0.0;
				for (k = 0; k < dim; k = k + 1) {
					s = s + ma[i * dim + k] * mb[k * dim + j];
				}
				mc[i * dim + j] = s;
			}
		}
		// Kernel 2: butterfly-style pass.
		for (i = 0; i < dim * dim - 1; i = i + 2) {
			float a;
			float b;
			a = mc[i] + mc[i + 1];
			b = mc[i] - mc[i + 1];
			mc[i] = a;
			mc[i + 1] = b;
		}
		// Kernel 3: partial pivot selection.
		for (j = 0; j < dim; j = j + 1) {
			int best;
			best = j;
			for (i = j; i < dim; i = i + 1) {
				float x;
				float y;
				x = lib_absf(mc[i * dim + j]);
				y = lib_absf(mc[best * dim + j]);
				if (x > y) { best = i; }
			}
			check = check + mc[best * dim + j];
		}
	}
	__printf(check);
	return 0;
}
`})

	register(Entry{
		Name: "ora", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 306,
		About: "optical ray tracing: sphere intersection tests near 50/50",
		Input: []int64{2400},
		Source: `
// ora: trace rays against a small sphere array.
float cx[8];
float cy[8];
float cr[8];

int main() {
	int rays;
	int r;
	int hits;
	int misses;
	float brightness;
	rays = __input(0);
	int k;
	for (k = 0; k < 8; k = k + 1) {
		cx[k] = (float) (k * 13 % 40) / 4.0;
		cy[k] = (float) (k * 7 % 40) / 4.0;
		cr[k] = 0.8 + (float) k / 8.0;
	}
	hits = 0;
	misses = 0;
	brightness = 0.0;
	int shadowed;
	int refracted;
	shadowed = 0;
	refracted = 0;
	for (r = 0; r < rays; r = r + 1) {
		float ox;
		float oy;
		int hit;
		int hitK;
		ox = (float) (__rand() % 100) / 10.0;
		oy = (float) (__rand() % 100) / 10.0;
		hit = 0;
		hitK = 0;
		for (k = 0; k < 8 && hit == 0; k = k + 1) {
			float dx;
			float dy;
			float d2;
			dx = ox - cx[k];
			dy = oy - cy[k];
			d2 = dx * dx + dy * dy;
			if (d2 < cr[k] * cr[k]) {
				hit = 1;
				hitK = k;
				brightness = brightness + lib_minf(1.0 / (d2 + 0.1), 5.0);
			}
		}
		if (hit) {
			hits = hits + 1;
			// Shadow ray toward the light at the origin.
			int blocked;
			blocked = 0;
			for (k = 0; k < 8; k = k + 1) {
				if (k != hitK) {
					float mx;
					float my;
					float md;
					mx = cx[hitK] * 0.5 - cx[k];
					my = cy[hitK] * 0.5 - cy[k];
					md = mx * mx + my * my;
					if (md < cr[k] * cr[k]) { blocked = 1; }
				}
			}
			if (blocked) {
				shadowed = shadowed + 1;
			} else if (cr[hitK] > 1.2) {
				// Large spheres refract a secondary ray.
				refracted = refracted + 1;
				brightness = brightness + 0.1;
			}
		} else {
			misses = misses + 1;
		}
	}
	__print(hits);
	__print(misses);
	__print(shadowed);
	__print(refracted);
	__printf(brightness);
	return 0;
}
`})

	register(Entry{
		Name: "spice", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 307,
		About: "circuit simulator: sparse matrix assembly and Gauss-Seidel sweeps with convergence checks",
		Input: []int64{40, 48},
		Source: `
// spice: iterate nodal voltages of a random resistive network.
float gmat[3000];
float rhs[60];
float v[60];

int main() {
	int iters;
	int nodes;
	int it;
	int converged;
	iters = __input(0);
	nodes = __input(1);
	converged = 0;
	int i;
	int j;
	for (i = 0; i < nodes; i = i + 1) {
		for (j = 0; j < nodes; j = j + 1) {
			if (i == j) {
				gmat[i * nodes + j] = 4.0;
			} else if (__rand() % 100 < 12) {
				gmat[i * nodes + j] = 0.0 - 0.5;
			} else {
				gmat[i * nodes + j] = 0.0;
			}
		}
		rhs[i] = (float) (__rand() % 100) / 50.0;
		v[i] = 0.0;
	}
	for (it = 0; it < iters; it = it + 1) {
		float maxDelta;
		maxDelta = 0.0;
		for (i = 0; i < nodes; i = i + 1) {
			float acc;
			float nv;
			float d;
			acc = rhs[i];
			for (j = 0; j < nodes; j = j + 1) {
				// Sparse skip: most entries are zero.
				if (j != i && gmat[i * nodes + j] != 0.0) {
					acc = acc - gmat[i * nodes + j] * v[j];
				}
			}
			nv = acc / gmat[i * nodes + i];
			d = lib_absf(nv - v[i]);
			maxDelta = lib_maxf(maxDelta, d);
			v[i] = nv;
		}
		if (maxDelta < 0.0001) {
			converged = 1;
			break;
		}
		// Solution-vector norm via the shared BLAS-style kernel.
		if (lib_vecnorm(&v[0], nodes) > 1000.0) {
			break;
		}
	}
	__print(converged);
	__printf(v[0]);
	__printf(lib_vecnorm(&v[0], nodes));
	return 0;
}
`})

	register(Entry{
		Name: "su2cor", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 308,
		About: "quark-gluon lattice: 4D-ish sweep with staple accumulation, ~73% taken",
		Input: []int64{7, 10},
		Source: `
// su2cor: update a small lattice of SU(2)-ish link values.
float lat[4000];

int main() {
	int sweeps;
	int dim;
	int s;
	float action;
	int accepted;
	int rejected;
	sweeps = __input(0);
	dim = __input(1);
	action = 0.0;
	accepted = 0;
	rejected = 0;
	int i;
	for (i = 0; i < dim * dim * dim; i = i + 1) {
		lat[i] = (float) (__rand() % 100) / 100.0;
	}
	for (s = 0; s < sweeps; s = s + 1) {
		int x;
		int y;
		int z;
		for (x = 1; x < dim - 1; x = x + 1) {
			for (y = 1; y < dim - 1; y = y + 1) {
				for (z = 1; z < dim - 1; z = z + 1) {
					int idx;
					float staple;
					float trial;
					idx = (x * dim + y) * dim + z;
					staple = lat[idx - 1] + lat[idx + 1]
					       + lat[idx - dim] + lat[idx + dim]
					       + lat[idx - dim * dim] + lat[idx + dim * dim];
					trial = staple / 6.0 + (float) (__rand() % 20 - 10) / 100.0;
					// Metropolis-ish accept: usually accepted.
					if (trial * staple > lat[idx] * staple - 0.3) {
						lat[idx] = trial;
						accepted = accepted + 1;
						// Over-relaxation for strongly-coupled sites.
						if (staple > 4.0) {
							lat[idx] = lat[idx] * 0.9 + 0.05;
						}
					} else {
						rejected = rejected + 1;
						if (trial < 0.0) { lat[idx] = 0.0; }
					}
					action = action + lat[idx] * staple;
				}
			}
		}
		// Per-sweep correlation measurement across a time slice.
		float corr;
		corr = 0.0;
		for (x = 1; x < dim - 1; x = x + 1) {
			int a;
			int b;
			a = (x * dim + dim / 2) * dim + dim / 2;
			b = ((dim - x) * dim + dim / 2) * dim + dim / 2;
			corr = corr + lib_absf(lat[a] - lat[b]);
		}
		action = action + corr * 0.01;
	}
	__printf(action);
	__print(accepted);
	__print(rejected);
	return 0;
}
`})

	register(Entry{
		Name: "swm256", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 309,
		About: "shallow water model: pure stencil sweeps with almost no non-loop branches (98.4% taken, Q-50 of 2)",
		Input: []int64{11, 30},
		Source: `
// swm256: shallow-water time stepping on a 2D grid.
float hgt[1024];
float uvel[1024];
float vvel[1024];

int main() {
	int steps;
	int dim;
	int s;
	float mass;
	steps = __input(0);
	dim = __input(1);
	int i;
	int j;
	for (i = 0; i < dim * dim; i = i + 1) {
		hgt[i] = 10.0 + (float) (i % 13) / 13.0;
		uvel[i] = 0.0;
		vvel[i] = 0.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				c = i * dim + j;
				uvel[c] = uvel[c] - 0.01 * (hgt[c + 1] - hgt[c - 1]);
				vvel[c] = vvel[c] - 0.01 * (hgt[c + dim] - hgt[c - dim]);
			}
		}
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				c = i * dim + j;
				hgt[c] = hgt[c] - 0.1 * (uvel[c + 1] - uvel[c - 1] + vvel[c + dim] - vvel[c - dim]);
			}
		}
		// Periodic boundary copy columns/rows.
		for (i = 0; i < dim; i = i + 1) {
			hgt[i * dim] = hgt[i * dim + dim - 2];
			hgt[i * dim + dim - 1] = hgt[i * dim + 1];
		}
		for (j = 0; j < dim; j = j + 1) {
			hgt[j] = hgt[(dim - 2) * dim + j];
			hgt[(dim - 1) * dim + j] = hgt[dim + j];
		}
		// CFL stability check: essentially never trips.
		float umax;
		umax = 0.0;
		for (i = 0; i < dim * dim; i = i + 1) {
			umax = lib_maxf(umax, uvel[i]);
		}
		if (umax > 50.0) {
			break;
		}
	}
	mass = 0.0;
	for (i = 0; i < dim * dim; i = i + 1) { mass = mass + hgt[i]; }
	__printf(mass);
	return 0;
}
`})

	register(Entry{
		Name: "tomcatv", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 310,
		About: "mesh generation: the Figure 2 kernel — relaxation sweeps whose residual-maximum tests (FABS/compare/branch) almost never update, 99.3% taken; one procedure dominates",
		Input: []int64{60, 24},
		Source: `
// tomcatv: relax mesh coordinates; track the maximum residuals rxm/rym the
// way the Figure 2 fragment does (FABS + compare + branch, nearly never
// taken toward the update).
float xm[784];
float ym[784];

int main() {
	int iters;
	int dim;
	int it;
	float rxm;
	float rym;
	iters = __input(0);
	dim = __input(1);
	int i;
	int j;
	for (i = 0; i < dim * dim; i = i + 1) {
		xm[i] = (float) (i % 17) / 17.0;
		ym[i] = (float) (i % 23) / 23.0;
	}
	rxm = 0.0;
	rym = 0.0;
	for (it = 0; it < iters; it = it + 1) {
		rxm = 1000.0; // seed max high so later updates are rare
		rym = 1000.0;
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				float rx;
				float ry;
				float ax;
				float ay;
				c = i * dim + j;
				rx = 0.25 * (xm[c - 1] + xm[c + 1] + xm[c - dim] + xm[c + dim]) - xm[c];
				ry = 0.25 * (ym[c - 1] + ym[c + 1] + ym[c - dim] + ym[c + dim]) - ym[c];
				// Figure 2: FABS(rx), FABS(rxm), CMPTLT, FBNE — the branch
				// to the update path is almost never taken.
				ax = rx;
				if (ax < 0.0) { ax = 0.0 - ax; }
				ay = rxm;
				if (ay < 0.0) { ay = 0.0 - ay; }
				if (ay < ax) { rxm = rx; }
				ax = ry;
				if (ax < 0.0) { ax = 0.0 - ax; }
				ay = rym;
				if (ay < 0.0) { ay = 0.0 - ay; }
				if (ay < ax) { rym = ry; }
				xm[c] = xm[c] + rx * 0.9;
				ym[c] = ym[c] + ry * 0.9;
			}
		}
	}
	__printf(rxm);
	__printf(rym);
	__printf(xm[dim + 1]);
	return 0;
}
`})

	register(Entry{
		Name: "wave5", Suite: SuiteSPECFortran, Language: ir.LangFortran, Seed: 311,
		About: "plasma particle-in-cell: particle push plus field deposit with boundary wrapping",
		Input: []int64{16, 600},
		Source: `
// wave5: push particles through a periodic 1D field, deposit charge, and
// smooth the field each step.
float field[256];
float charge[256];
float ppos[640];
float pvel[640];

int main() {
	int steps;
	int nparts;
	int s;
	float energy;
	int wraps;
	int reflections;
	steps = __input(0);
	nparts = __input(1);
	energy = 0.0;
	wraps = 0;
	reflections = 0;
	int i;
	for (i = 0; i < 256; i = i + 1) {
		field[i] = (float) (i % 11) / 11.0 - 0.5;
		charge[i] = 0.0;
	}
	for (i = 0; i < nparts; i = i + 1) {
		ppos[i] = (float) (__rand() % 2560) / 10.0;
		// Fast particles: boundary events happen constantly.
		pvel[i] = (float) (__rand() % 4000 - 2000) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		// Push phase.
		for (i = 0; i < nparts; i = i + 1) {
			int cell;
			cell = (int) ppos[i];
			if (cell < 0) { cell = 0; }
			if (cell > 255) { cell = 255; }
			pvel[i] = pvel[i] + field[cell] * 0.1;
			ppos[i] = ppos[i] + pvel[i];
			// Periodic boundaries: wrap when leaving the domain.
			if (ppos[i] < 0.0) {
				ppos[i] = ppos[i] + 256.0;
				wraps = wraps + 1;
				if (ppos[i] < 0.0) {
					// Very fast particle: reflect instead.
					ppos[i] = 0.0 - ppos[i];
					pvel[i] = 0.0 - pvel[i];
					reflections = reflections + 1;
					if (ppos[i] >= 256.0) { ppos[i] = 255.0; }
				}
			} else if (ppos[i] >= 256.0) {
				ppos[i] = ppos[i] - 256.0;
				wraps = wraps + 1;
				if (ppos[i] >= 256.0) {
					ppos[i] = 511.9 - ppos[i];
					pvel[i] = 0.0 - pvel[i];
					reflections = reflections + 1;
					if (ppos[i] < 0.0) { ppos[i] = 0.0; }
				}
			}
			energy = energy + pvel[i] * pvel[i];
		}
		// Deposit phase.
		for (i = 0; i < 256; i = i + 1) { charge[i] = 0.0; }
		for (i = 0; i < nparts; i = i + 1) {
			int cell;
			cell = (int) ppos[i];
			if (cell >= 0 && cell < 256) {
				charge[cell] = charge[cell] + 1.0;
			}
		}
		// Field solve: smooth charge into field.
		for (i = 1; i < 255; i = i + 1) {
			field[i] = field[i] * 0.98
			         + (charge[i - 1] - 2.0 * charge[i] + charge[i + 1]) * 0.001;
			// Field clamp: rare.
			field[i] = lib_clampf(field[i], 0.0 - 2.0, 2.0);
		}
		// Diagnostic: peak field magnitude via the shared kernel.
		if (lib_vecmax(&field[0], 256) > 1.9) {
			reflections = reflections + 0; // saturated field: no-op path
		}
	}
	__printf(energy);
	__print(wraps);
	__print(reflections);
	return 0;
}
`})
}
