package ir

import "fmt"

// FuncBuilder incrementally constructs a Func. It is used by the code
// generator and by tests that need hand-built CFGs.
type FuncBuilder struct {
	fn   *Func
	cur  *Block
	next int
}

// NewFuncBuilder starts a function with an initial entry block selected as
// the current block.
func NewFuncBuilder(name string, lang Language) *FuncBuilder {
	b := &FuncBuilder{fn: &Func{Name: name, Language: lang}}
	entry := b.NewBlock()
	b.SetBlock(entry)
	return b
}

// Func returns the function under construction.
func (b *FuncBuilder) Func() *Func { return b.fn }

// NewBlock appends a fresh empty block to the layout and returns it. The
// current block is unchanged.
func (b *FuncBuilder) NewBlock() *Block {
	blk := &Block{ID: b.next}
	b.next++
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

// NewBlockDetached creates a block with a fresh ID but does not place it in
// the layout; use Place to insert it at the end later. This lets the code
// generator create join points before their position is known.
func (b *FuncBuilder) NewBlockDetached() *Block {
	blk := &Block{ID: b.next}
	b.next++
	return blk
}

// Place appends a detached block to the layout.
func (b *FuncBuilder) Place(blk *Block) {
	for _, have := range b.fn.Blocks {
		if have == blk {
			panic(fmt.Sprintf("ir: block b%d placed twice", blk.ID))
		}
	}
	b.fn.Blocks = append(b.fn.Blocks, blk)
}

// SetBlock makes blk the current emission target.
func (b *FuncBuilder) SetBlock(blk *Block) { b.cur = blk }

// Block returns the current emission target.
func (b *FuncBuilder) Block() *Block { return b.cur }

// Emit appends an instruction to the current block.
func (b *FuncBuilder) Emit(in Instr) {
	if b.cur == nil {
		panic("ir: Emit with no current block")
	}
	if t := b.cur.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emit %v after terminator %v in b%d", in.String(), t.String(), b.cur.ID))
	}
	b.cur.Insns = append(b.cur.Insns, in)
}

// Terminated reports whether the current block already ends with a
// terminator (so no further instructions may be emitted into it).
func (b *FuncBuilder) Terminated() bool {
	return b.cur != nil && b.cur.Terminator() != nil
}

// Op3 emits a three-register instruction Dst = A op B.
func (b *FuncBuilder) Op3(op Op, dst, a, rb Reg) {
	b.Emit(Instr{Op: op, Dst: dst, A: a, B: rb})
}

// OpImm emits Dst = A op #imm.
func (b *FuncBuilder) OpImm(op Op, dst, a Reg, imm int64) {
	b.Emit(Instr{Op: op, Dst: dst, A: a, Imm: imm, UseImm: true})
}

// LoadInt emits Dst = #imm.
func (b *FuncBuilder) LoadInt(dst Reg, imm int64) {
	b.Emit(Instr{Op: OpLdiQ, Dst: dst, Imm: imm})
}

// Lda emits Dst = &sym + off.
func (b *FuncBuilder) Lda(dst Reg, sym string, off int64) {
	b.Emit(Instr{Op: OpLda, Dst: dst, Sym: sym, Imm: off})
}

// Branch emits a conditional branch on reg to the taken block.
func (b *FuncBuilder) Branch(op Op, reg Reg, taken *Block) {
	if !op.IsCondBranch() {
		panic("ir: Branch with non-branch opcode " + op.String())
	}
	b.Emit(Instr{Op: op, A: reg, Target: taken.ID})
}

// Branch2 emits a MIPS-style two-register conditional branch.
func (b *FuncBuilder) Branch2(op Op, a, rb Reg, taken *Block) {
	if !op.IsTwoRegBranch() {
		panic("ir: Branch2 with non-two-register branch " + op.String())
	}
	b.Emit(Instr{Op: op, A: a, B: rb, Target: taken.ID})
}

// Jump emits an unconditional branch.
func (b *FuncBuilder) Jump(target *Block) {
	b.Emit(Instr{Op: OpBr, Target: target.ID})
}

// Call emits a direct call.
func (b *FuncBuilder) Call(callee string) {
	b.Emit(Instr{Op: OpBsr, Sym: callee})
}

// Ret emits a return.
func (b *FuncBuilder) Ret() { b.Emit(Instr{Op: OpRet}) }
