package features

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/neural"
)

// Encoder turns categorical feature vectors into the neural network's
// numeric inputs: each (feature, value) pair becomes a one-hot input column,
// every column is normalized to zero mean and unit standard deviation over
// the training corpus (Section 3.1.1), and an Unknown ("?") dependent
// feature contributes zero activity to all of its columns after
// normalization — the paper's gating of nonmeaningful dependent features.
type Encoder struct {
	// Vocab lists the known values per feature, sorted.
	Vocab [NumFeatures][]string
	// Offsets locates each feature's first column.
	Offsets [NumFeatures]int
	// Dim is the total input dimension.
	Dim int
	// Mean and Std hold the per-column normalization statistics.
	Mean []float64
	Std  []float64

	index [NumFeatures]map[string]int
}

// NewEncoder builds the vocabulary and normalization statistics from a
// training set of feature vectors.
func NewEncoder(train []Vector) *Encoder {
	e := &Encoder{}
	var seen [NumFeatures]map[string]bool
	for f := 0; f < NumFeatures; f++ {
		seen[f] = make(map[string]bool)
	}
	for _, v := range train {
		for f, val := range v.Values {
			if val != Unknown && val != "" {
				seen[f][val] = true
			}
		}
	}
	dim := 0
	for f := 0; f < NumFeatures; f++ {
		vals := make([]string, 0, len(seen[f]))
		for val := range seen[f] {
			vals = append(vals, val)
		}
		sort.Strings(vals)
		e.Vocab[f] = vals
		e.Offsets[f] = dim
		e.index[f] = make(map[string]int, len(vals))
		for i, val := range vals {
			e.index[f][val] = dim + i
		}
		dim += len(vals)
	}
	e.Dim = dim
	e.Mean = make([]float64, dim)
	e.Std = make([]float64, dim)
	if len(train) == 0 {
		for i := range e.Std {
			e.Std[i] = 1
		}
		return e
	}
	raw := make([]float64, dim)
	counts := make([]float64, dim)
	for _, v := range train {
		e.rawOneHot(v, raw)
		for i, x := range raw {
			counts[i] += x
		}
	}
	n := float64(len(train))
	for i := range e.Mean {
		p := counts[i] / n
		e.Mean[i] = p
		// One-hot columns are Bernoulli(p): std = sqrt(p(1-p)).
		s := math.Sqrt(p * (1 - p))
		if s < 1e-9 {
			s = 0 // constant column: encode as zero activity always
		}
		e.Std[i] = s
	}
	return e
}

// Rebuild reconstructs the internal value-to-column index after the encoder
// has been deserialized (the index is derived state and is not serialized).
func (e *Encoder) Rebuild() {
	for f := 0; f < NumFeatures; f++ {
		e.index[f] = make(map[string]int, len(e.Vocab[f]))
		for i, val := range e.Vocab[f] {
			e.index[f][val] = e.Offsets[f] + i
		}
	}
}

// rawOneHot writes the unnormalized 0/1 encoding into dst (length Dim).
func (e *Encoder) rawOneHot(v Vector, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for f, val := range v.Values {
		if val == Unknown || val == "" {
			continue
		}
		if col, ok := e.index[f][val]; ok {
			dst[col] = 1
		}
	}
}

// Encode writes the normalized input vector for v into dst, which must have
// length Dim. Unknown dependent features yield zero activity across their
// columns; unseen values (possible for programs outside the training corpus)
// likewise contribute nothing.
func (e *Encoder) Encode(v Vector, dst []float64) {
	if len(dst) != e.Dim {
		panic(fmt.Sprintf("features: Encode dst length %d, want %d", len(dst), e.Dim))
	}
	for i := range dst {
		dst[i] = 0
	}
	for f, val := range v.Values {
		lo := e.Offsets[f]
		hi := lo + len(e.Vocab[f])
		if val == Unknown || val == "" {
			// Gated: zero activity for the whole feature block.
			continue
		}
		col, known := e.index[f][val]
		for i := lo; i < hi; i++ {
			if e.Std[i] == 0 {
				dst[i] = 0
				continue
			}
			x := 0.0
			if known && i == col {
				x = 1
			}
			dst[i] = (x - e.Mean[i]) / e.Std[i]
		}
	}
}

// EncodeAll encodes a batch into a freshly allocated matrix.
func (e *Encoder) EncodeAll(vs []Vector) [][]float64 {
	out := make([][]float64, len(vs))
	backing := make([]float64, len(vs)*e.Dim)
	for i, v := range vs {
		out[i] = backing[i*e.Dim : (i+1)*e.Dim]
		e.Encode(v, out[i])
	}
	return out
}

// EncodeAllSparse encodes a batch in compressed-sparse-row form, emitting
// exactly the nonzero entries Encode would write (ascending column order):
// gated ("?") feature blocks and constant (zero-std) columns produce no
// entries at all. The training kernels consume this directly.
func (e *Encoder) EncodeAllSparse(vs []Vector) *neural.CSR {
	// Count the active columns per feature block once: a block contributes
	// its non-constant columns whenever its feature has a value.
	var blockNNZ [NumFeatures]int
	for f := 0; f < NumFeatures; f++ {
		lo := e.Offsets[f]
		for i := 0; i < len(e.Vocab[f]); i++ {
			if e.Std[lo+i] != 0 {
				blockNNZ[f]++
			}
		}
	}
	total := 0
	for _, v := range vs {
		for f, val := range v.Values {
			if val != Unknown && val != "" {
				total += blockNNZ[f]
			}
		}
	}
	c := &neural.CSR{
		Cols:  e.Dim,
		Start: make([]int, 1, len(vs)+1),
		Index: make([]int32, 0, total),
		Value: make([]float64, 0, total),
	}
	for _, v := range vs {
		for f, val := range v.Values {
			if val == Unknown || val == "" {
				continue
			}
			lo := e.Offsets[f]
			hi := lo + len(e.Vocab[f])
			col, known := e.index[f][val]
			for i := lo; i < hi; i++ {
				if e.Std[i] == 0 {
					continue
				}
				x := 0.0
				if known && i == col {
					x = 1
				}
				c.Index = append(c.Index, int32(i))
				c.Value = append(c.Value, (x-e.Mean[i])/e.Std[i])
			}
		}
		c.Start = append(c.Start, len(c.Index))
	}
	return c
}

// Mask reports, per input column, whether the column belongs to one of the
// given feature indices; the feature-ablation experiments use it to zero
// feature groups.
func (e *Encoder) Mask(feats []int) []bool {
	m := make([]bool, e.Dim)
	for _, f := range feats {
		lo := e.Offsets[f]
		for i := 0; i < len(e.Vocab[f]); i++ {
			m[lo+i] = true
		}
	}
	return m
}
