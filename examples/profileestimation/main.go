// Profile estimation: the paper's stated next step (Section 6): "Our next
// goal will be to incorporate this branch probability data to perform
// program-based profile estimation using ESP."
//
// ESP's output unit is a probability, not just a bit. This example uses the
// predicted probabilities of a held-out program as a static branch profile
// and scores them against the measured profile, comparing ESP's estimates
// with the Dempster-Shafer heuristic probabilities of Wu and Larus.
//
// Run with: go run ./examples/profileestimation [program]
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/ir"
)

func main() {
	name := "grep"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	heldEntry, ok := corpus.ByName(name)
	if !ok {
		log.Fatalf("unknown corpus program %q", name)
	}

	// Train on the held-out program's language group, excluding it.
	var train []*core.ProgramData
	var held *core.ProgramData
	group := corpus.ByLanguage(heldEntry.Language)
	if heldEntry.Language == ir.LangScheme {
		group = corpus.BySuite(corpus.SuiteScheme)
	}
	for _, e := range group {
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			log.Fatal(err)
		}
		pd, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			log.Fatal(err)
		}
		if e.Name == name {
			held = pd
		} else {
			train = append(train, pd)
		}
	}
	if held == nil {
		log.Fatalf("%q not in its language group", name)
	}
	model := core.Train(train, core.Config{})
	dshc := heuristics.NewDSHCBallLarus()

	// Score both estimators' probabilities against the real profile:
	// execution-weighted mean absolute error of the taken-probability.
	var espErr, dshcErr, uniformErr, total float64
	fmt.Printf("static profile estimation for %q (hottest sites):\n", name)
	fmt.Printf("%-24s %9s %8s %8s %8s\n", "branch", "executed", "actual", "ESP", "DSHC")
	for i, s := range held.Sites.Sites {
		c := held.Profile.Branches[s.Ref]
		if c == nil || c.Executed == 0 {
			continue
		}
		w := float64(c.Executed)
		actual := c.TakenFraction()
		esp := model.TakenProbability(features.Of(s))
		dp, _ := dshc.TakenProbability(s)
		espErr += w * math.Abs(esp-actual)
		dshcErr += w * math.Abs(dp-actual)
		uniformErr += w * math.Abs(0.5-actual)
		total += w
		if c.Executed >= held.Profile.CondExec/20 {
			fmt.Printf("%-24s %9d %8.2f %8.2f %8.2f\n",
				held.Sites.Sites[i].Ref, c.Executed, actual, esp, dp)
		}
	}
	fmt.Printf("\nexecution-weighted |p_estimated - p_actual|:\n")
	fmt.Printf("  ESP probabilities          %.3f\n", espErr/total)
	fmt.Printf("  DSHC (Wu/Larus) evidence   %.3f\n", dshcErr/total)
	fmt.Printf("  uninformed 0.5 baseline    %.3f\n", uniformErr/total)
}
