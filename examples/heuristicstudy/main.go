// Heuristic study: how language- and architecture-dependent the Ball/Larus
// heuristics are (Sections 3.1.2 and 5.2 of the paper).
//
// The program measures each heuristic in isolation over the C group, the
// Fortran group, and the three Scheme programs, and again under the
// MIPS-style target — reproducing the paper's observations that several
// heuristics swing by more than 10 points between languages, and that the
// Scheme idioms (recursion as iteration, interned structure) invert the
// Return and Pointer heuristics.
//
// Run with: go run ./examples/heuristicstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/heuristics"
)

func analyze(entries []corpus.Entry, tgt codegen.Target) []*core.ProgramData {
	var out []*core.ProgramData
	for _, e := range entries {
		prog, err := e.Compile(tgt)
		if err != nil {
			log.Fatal(err)
		}
		pd, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, pd)
	}
	return out
}

// groupMiss measures per-heuristic miss rates over a program group,
// averaging per program and skipping programs where a heuristic covers
// less than 1% of branches (the paper's Table 6 rule).
func groupMiss(data []*core.ProgramData) [heuristics.NumHeuristics]float64 {
	var sum [heuristics.NumHeuristics]float64
	var n [heuristics.NumHeuristics]int
	for _, pd := range data {
		per := heuristics.PerHeuristic(pd.Sites, pd.Profile, heuristics.Config{})
		for h := range per {
			if per[h].CoverageFraction() >= 0.01 {
				sum[h] += per[h].MissRate()
				n[h]++
			}
		}
	}
	var out [heuristics.NumHeuristics]float64
	for h := range out {
		if n[h] > 0 {
			out[h] = sum[h] / float64(n[h])
		}
	}
	return out
}

func main() {
	cGroup := analyze(corpus.ByLanguage("C"), codegen.Default)
	fGroup := analyze(corpus.ByLanguage("FORT"), codegen.Default)
	scheme := analyze(corpus.BySuite(corpus.SuiteScheme), codegen.Default)
	mips := analyze(corpus.Study(), codegen.MIPSCC)

	c, f, s, m := groupMiss(cGroup), groupMiss(fGroup), groupMiss(scheme), groupMiss(mips)

	fmt.Println("per-heuristic miss rates (%) by language group and target:")
	fmt.Printf("%-12s %8s %8s %8s %12s\n", "heuristic", "C", "FORT", "Scheme", "MIPS target")
	divergent := 0
	for h := heuristics.Heuristic(0); h < heuristics.NumHeuristics; h++ {
		fmt.Printf("%-12s %8.1f %8.1f %8.1f %12.1f\n",
			h, 100*c[h], 100*f[h], 100*s[h], 100*m[h])
		d := c[h] - f[h]
		if d < 0 {
			d = -d
		}
		if d > 0.10 {
			divergent++
		}
	}
	fmt.Printf("\n%d of %d heuristics differ by more than 10 points between C and Fortran\n",
		divergent, int(heuristics.NumHeuristics))
	fmt.Printf("Scheme inversion: Pointer %+.0f points vs C, Return %+.0f points vs C\n",
		100*(s[heuristics.Pointer]-c[heuristics.Pointer]),
		100*(s[heuristics.Return]-c[heuristics.Return]))
}
