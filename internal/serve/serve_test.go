package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
)

// The test fixture: a small but real ESP model trained on a handful of
// corpus programs, shared across all tests in the package.
var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureData  []*core.ProgramData
	fixtureErr   error
)

func testModel(t testing.TB) (*core.Model, []*core.ProgramData) {
	t.Helper()
	fixtureOnce.Do(func() {
		names := []string{"bc", "grep", "gzip"}
		for _, name := range names {
			e, ok := corpus.ByName(name)
			if !ok {
				fixtureErr = fmt.Errorf("no corpus entry %q", name)
				return
			}
			prog, err := e.Compile(codegen.Default)
			if err != nil {
				fixtureErr = err
				return
			}
			pd, err := core.Analyze(prog, e.Language, e.RunConfig())
			if err != nil {
				fixtureErr = err
				return
			}
			fixtureData = append(fixtureData, pd)
		}
		cfg := core.Config{Hidden: 8}
		cfg.Net.MaxEpochs = 40
		cfg.Net.Patience = 10
		fixtureModel = core.Train(fixtureData, cfg)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureModel, fixtureData
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	model, _ := testModel(t)
	if cfg.Model == nil {
		cfg.Model = model
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postPredict(t *testing.T, url string, req PredictRequest) (*http.Response, PredictResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, pr
}

// vectorValues flattens extracted vectors into the request wire form.
func vectorValues(vecs []features.Vector) [][]string {
	out := make([][]string, len(vecs))
	for i, v := range vecs {
		vals := make([]string, features.NumFeatures)
		copy(vals, v.Values[:])
		out[i] = vals
	}
	return out
}

func TestPredictVectorsBitIdentical(t *testing.T) {
	model, data := testModel(t)
	_, ts := testServer(t, Config{})

	vecs := data[0].Vectors
	resp, pr := postPredict(t, ts.URL, PredictRequest{ID: "req-1", Vectors: vectorValues(vecs)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if pr.ID != "req-1" {
		t.Errorf("id echoed as %q", pr.ID)
	}
	if len(pr.Predictions) != len(vecs) {
		t.Fatalf("%d predictions for %d vectors", len(pr.Predictions), len(vecs))
	}
	for i, p := range pr.Predictions {
		// The offline reference: the exact same float the model computes.
		want := model.TakenProbability(vecs[i])
		if p.Probability != want {
			t.Fatalf("vector %d: served probability %v != offline %v", i, p.Probability, want)
		}
		if p.Taken != (want > 0.5) {
			t.Errorf("vector %d: taken=%v for probability %v", i, p.Taken, want)
		}
		wantConf := want
		if wantConf < 0.5 {
			wantConf = 1 - wantConf
		}
		if p.Confidence != wantConf {
			t.Errorf("vector %d: confidence %v, want %v", i, p.Confidence, wantConf)
		}
		if p.Branch != fmt.Sprintf("#%d", i) {
			t.Errorf("vector %d labeled %q", i, p.Branch)
		}
	}
}

// TestPredictSourceMatchesOffline is the acceptance check that serving a
// (cached) program's predictions agrees bit for bit with the offline core
// pipeline on the same model.
func TestPredictSourceMatchesOffline(t *testing.T) {
	model, _ := testModel(t)
	s, ts := testServer(t, Config{})

	e, _ := corpus.ByName("sort")
	req := PredictRequest{
		ID: "src-1", Name: e.Name, Source: e.Source,
		Language: string(e.Language), LinkStdlib: true,
	}

	// Offline reference: compile and predict the same source directly.
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	ps := features.Collect(prog)
	offVecs := features.ExtractAll(ps)

	for round := 0; round < 2; round++ {
		resp, pr := postPredict(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		if want := round == 1; pr.Cached != want {
			t.Errorf("round %d: cached=%v, want %v", round, pr.Cached, want)
		}
		if pr.Program != e.Name {
			t.Errorf("round %d: program %q", round, pr.Program)
		}
		if len(pr.Predictions) != len(offVecs) {
			t.Fatalf("round %d: %d predictions, offline has %d sites", round, len(pr.Predictions), len(offVecs))
		}
		for i, p := range pr.Predictions {
			if want := ps.Sites[i].Ref.String(); p.Branch != want {
				t.Fatalf("round %d: site %d labeled %q, want %q", round, i, p.Branch, want)
			}
			if want := model.TakenProbability(offVecs[i]); p.Probability != want {
				t.Fatalf("round %d: site %s served %v, offline %v", round, p.Branch, p.Probability, want)
			}
		}
	}
	if hits := s.metrics.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := s.metrics.cacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{MaxSourceBytes: 4096, MaxVectors: 8})
	cases := []struct {
		name string
		req  PredictRequest
		want int
	}{
		{"empty", PredictRequest{}, http.StatusBadRequest},
		{"both", PredictRequest{Source: "int main() { return 0; }", Vectors: [][]string{make([]string, features.NumFeatures)}}, http.StatusBadRequest},
		{"short vector", PredictRequest{Vectors: [][]string{{"BNE"}}}, http.StatusBadRequest},
		{"too many vectors", PredictRequest{Vectors: make([][]string, 9)}, http.StatusRequestEntityTooLarge},
		{"parse error", PredictRequest{Source: "int main( {"}, http.StatusBadRequest},
		{"bad language", PredictRequest{Source: "int main() { return 0; }", Language: "COBOL"}, http.StatusBadRequest},
		{"huge source", PredictRequest{Source: strings.Repeat("/* pad */", 1000)}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, _ := postPredict(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Non-JSON body and wrong method.
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: status %d", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, data := testModel(t)
	s, ts := testServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, hz)
	}
	if hz.Classifier != "neural-net" || hz.Inputs == 0 {
		t.Errorf("healthz misdescribes the model: %+v", hz)
	}

	// Drive one prediction so the counters move.
	if r, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:3])}); r.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", r.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, line := range []string{
		`espserve_requests_total{endpoint="predict"} 1`,
		`espserve_requests_total{endpoint="healthz"} 1`,
		`espserve_predicted_vectors_total 3`,
		`espserve_batches_total`,
		`espserve_cache_hits_total 0`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q:\n%s", line, body)
		}
	}
	if s.metrics.endpoint("predict").requests.Load() != 1 {
		t.Error("predict counter did not advance")
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	_, data := testModel(t)
	s, ts := testServer(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:1])})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("predict after drain: status %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: status %d, want 503", hz.StatusCode)
	}
	// Draining twice is fine.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestPoolSubmitHonorsContext(t *testing.T) {
	model, data := testModel(t)
	p := newPool(model, 1, 4, 4, newMetrics())
	defer p.drain(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.submit(ctx, data[0].Vectors); err != context.Canceled {
		t.Errorf("submit with canceled context: %v", err)
	}
	// An empty submission is a no-op.
	if probs, err := p.submit(context.Background(), nil); err != nil || probs != nil {
		t.Errorf("empty submit: %v %v", probs, err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	a, b, d := &programImage{Name: "a"}, &programImage{Name: "b"}, &programImage{Name: "d"}
	c.add("a", a)
	c.add("b", b)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("d", d) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	if _, ok := c.get("d"); !ok {
		t.Error("d missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Re-adding an existing key refreshes in place.
	c.add("a", &programImage{Name: "a2"})
	if img, _ := c.get("a"); img.Name != "a2" {
		t.Error("re-add did not replace the image")
	}
	if c.len() != 2 {
		t.Errorf("len after re-add = %d", c.len())
	}
}

func TestBatchPredictionMatchesSingle(t *testing.T) {
	model, data := testModel(t)
	vecs := data[1].Vectors
	out := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, out)
	for i, v := range vecs {
		if want := model.TakenProbability(v); out[i] != want {
			t.Fatalf("vector %d: batch %v != single %v", i, out[i], want)
		}
	}
}
