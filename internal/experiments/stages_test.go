package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// TestAnalysisStages runs the per-stage timing pipeline over a small corpus
// slice and checks the report's shape: every stage present in order, one
// observation per program for the per-program stages, exactly one for train,
// and monotone quantiles.
func TestAnalysisStages(t *testing.T) {
	entries := corpus.Study()
	if len(entries) > 3 {
		entries = entries[:3]
	}
	rep, err := AnalysisStages(entries, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != len(entries) {
		t.Errorf("Programs = %d, want %d", rep.Programs, len(entries))
	}
	if got, want := len(rep.Stages), len(stageNames); got != want {
		t.Fatalf("%d stages, want %d", got, want)
	}
	for i, s := range rep.Stages {
		if s.Stage != stageNames[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Stage, stageNames[i])
		}
		wantCount := int64(len(entries))
		if s.Stage == "train" {
			wantCount = 1
		}
		if s.Count != wantCount {
			t.Errorf("%s: count %d, want %d", s.Stage, s.Count, wantCount)
		}
		if s.P50US > s.P90US || s.P90US > s.P99US {
			t.Errorf("%s: quantiles not monotone: p50=%g p90=%g p99=%g",
				s.Stage, s.P50US, s.P90US, s.P99US)
		}
		if s.TotalUS < 0 || s.MeanUS < 0 {
			t.Errorf("%s: negative totals: total=%d mean=%g", s.Stage, s.TotalUS, s.MeanUS)
		}
	}

	out := rep.Render()
	for _, name := range stageNames {
		if !strings.Contains(out, name) {
			t.Errorf("Render() missing stage %q:\n%s", name, out)
		}
	}
}
