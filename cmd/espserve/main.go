// Command espserve serves a trained ESP model as an online branch-prediction
// oracle over HTTP JSON:
//
//	esptool train -out model.json
//	espserve -model model.json -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/predict -d '{"name":"demo","link_stdlib":true,"source":"int main() { ... }"}'
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the server drains gracefully: listening stops, requests
// already in flight complete, and the prediction worker pool empties before
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on the -pprof-addr mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "espserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("espserve", flag.ExitOnError)
	modelPath := fs.String("model", "esp-model.json", "trained model file (esptool train)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "prediction workers (default GOMAXPROCS)")
	maxBatch := fs.Int("batch", 0, "max requests folded into one model pass (default 32)")
	cacheSize := fs.Int("cache", 0, "compiled-program LRU cache entries (default 128)")
	timeout := fs.Duration("timeout", 0, "per-request deadline (default 10s)")
	drainWait := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	maxInflight := fs.Int("admission-limit", 0,
		"max concurrently admitted /predict requests; excess sheds with 429 (default queue depth, -1 unlimited)")
	maxParseDepth := fs.Int("max-parse-depth", 0,
		"max statement/expression nesting in submitted source (default 256, -1 unlimited)")
	maxCFGBlocks := fs.Int("max-cfg-blocks", 0,
		"max CFG blocks per compiled function (default 16384, -1 unlimited)")
	noDegrade := fs.Bool("no-degrade", false,
		"disable the heuristic fallback: model-path failures return 5xx instead of degraded predictions")
	train := fs.Bool("train", false,
		"train the model from the corpus at startup instead of loading -model (uses the artifact cache)")
	quant := fs.Bool("quant", false,
		"serve the int8 quantized forward path (requires a calibrated model: esptool calibrate, or -train which calibrates in-process)")
	cacheDir := fs.String("cache-dir", "",
		"artifact cache directory for -train (default $ESPCACHE_DIR, else .espcache)")
	noCache := fs.Bool("no-cache", false, "disable the persistent analysis cache for -train")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0,
		"evict least-recently-used artifact cache entries past this size (0 = unbounded)")
	peers := fs.String("peers", "",
		"comma-separated base URLs of peer replicas sharing the artifact cache (enables the peer-cache protocol)")
	self := fs.String("self", "",
		"this replica's own base URL, excluded from -peers fetches")
	pprofAddr := fs.String("pprof-addr", "",
		"serve net/http/pprof on this address (off when empty; bind to localhost)")
	accessLog := fs.String("access-log", "",
		"write sampled request traces as JSON lines to this file (\"-\" for stdout; off when empty)")
	traceSample := fs.Float64("trace-sample", 0.01,
		"fraction of request traces written to -access-log (0 disables, 1 logs every request)")
	traceRing := fs.Int("trace-ring", 0,
		"completed request traces kept in memory for /debug/requests (default 256, -1 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Printf("espserve: pprof on %s\n", pln.Addr())
		// http.DefaultServeMux carries the net/http/pprof handlers; the
		// prediction API below uses its own mux, so nothing else leaks here.
		go func() { _ = http.Serve(pln, nil) }()
	}

	// The artifact cache backs -train and the peer-cache protocol; when
	// peers are configured, analyses arrive from replicas that already did
	// the work before the interpreter is ever consulted.
	var cache *artifact.Cache
	if !*noCache && (*train || *peers != "") {
		var err error
		if cache, err = artifact.Open(artifact.DefaultDir(*cacheDir)); err != nil {
			fmt.Fprintf(os.Stderr, "espserve: %v (continuing uncached)\n", err)
			cache = nil
		}
		cache.SetMaxBytes(*cacheMaxBytes)
	}
	var analysis core.AnalysisCache = cache
	var peerCache *cluster.PeerCache
	if *peers != "" {
		var peerURLs []string
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				peerURLs = append(peerURLs, u)
			}
		}
		peerCache = cluster.NewPeerCache(cache, cluster.PeerCacheConfig{
			Self:  strings.TrimRight(*self, "/"),
			Peers: peerURLs,
		})
		analysis = peerCache
	}

	// loadModel produces a fresh serving model from the configured source —
	// the corpus (-train, warmed by the artifact/peer cache) or the -model
	// file — both at startup and on each SIGHUP hot reload.
	loadModel := func() (*core.Model, error) {
		var model *core.Model
		if *train {
			var err error
			if model, err = trainStartupModel(analysis, *quant); err != nil {
				return nil, err
			}
		} else {
			f, err := os.Open(*modelPath)
			if err != nil {
				return nil, err
			}
			model, err = core.Load(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			if *quant && model.QuantCalib == nil {
				return nil, fmt.Errorf("-quant needs a calibrated model: run `esptool calibrate -model %s` first (or use -train)", *modelPath)
			}
		}
		if *quant {
			if err := model.EnableQuant(); err != nil {
				return nil, err
			}
			fmt.Printf("espserve: int8 quantized path enabled (xscale %.4f, guard %.6f)\n",
				model.QuantCalib.XScale, model.QuantCalib.Guard)
		}
		return model, nil
	}
	model, err := loadModel()
	if err != nil {
		return err
	}

	var accessLogW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessLogW = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer f.Close()
		accessLogW = f
	}

	s, err := serve.New(serve.Config{
		Model:          model,
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		MaxInflight:    *maxInflight,
		MaxParseDepth:  *maxParseDepth,
		MaxCFGBlocks:   *maxCFGBlocks,
		NoDegrade:      *noDegrade,
		TraceRing:      *traceRing,
		TraceSample:    *traceSample,
		AccessLog:      accessLogW,
	})
	if err != nil {
		return err
	}

	handler := s.Handler()
	if peerCache != nil {
		// Peer hits/misses surface in this server's /metrics, and other
		// replicas fetch our cache entries at the peer path.
		peerCache.SetCounters(s.ClusterStats())
		mux := http.NewServeMux()
		mux.Handle(cluster.PeerPathPrefix, peerCache.Handler())
		mux.Handle("/", handler)
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	// The resolved address goes to stdout so scripts (and tests) binding
	// ":0" can find the port.
	fmt.Printf("espserve: serving %s model on %s\n",
		model.Cfg.Classifier, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads the model without dropping a request: in-flight
	// work stays pinned to its version while new requests see the reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			m, err := loadModel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "espserve: reload: %v\n", err)
				continue
			}
			v, err := s.Reload(m)
			if err != nil {
				fmt.Fprintf(os.Stderr, "espserve: reload: %v\n", err)
				continue
			}
			fmt.Printf("espserve: model reloaded (version %d)\n", v)
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Println("espserve: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop accepting connections and wait for in-flight HTTP requests, then
	// empty the prediction pool.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("espserve: drained, exiting")
	return nil
}

// trainStartupModel trains an ESP model from the full study corpus at
// startup. The expensive part — profiling every corpus program — is served
// from the analysis cache when warm (the local artifact cache, or a peer
// replica's via the cluster peer protocol), so a restart with a populated
// cache — or a cold replica joining a warm cluster — reaches serving
// without a single interpreter trace. With quant set, the freshly analyzed
// corpus doubles as the quantization calibration set.
func trainStartupModel(cache core.AnalysisCache, quant bool) (*core.Model, error) {
	start := time.Now()
	var data []*core.ProgramData
	for _, e := range corpus.Study() {
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			return nil, fmt.Errorf("train %s: %w", e.Name, err)
		}
		pd, err := core.AnalyzeCached(cache, prog, e.Language, e.RunConfig())
		if err != nil {
			return nil, fmt.Errorf("train %s: %w", e.Name, err)
		}
		data = append(data, pd)
	}
	model := core.Train(data, core.Config{})
	fmt.Printf("espserve: trained on %d programs in %v\n", len(data), time.Since(start).Round(time.Millisecond))
	if quant {
		rep, err := core.CalibrateQuant(model, data, nil)
		if err != nil {
			return nil, err
		}
		fmt.Printf("espserve: quantization calibrated (margin %.4f, %.2f%% float fallback)\n",
			rep.Chosen.Margin, 100*rep.Chosen.FallbackFraction())
	}
	return model, nil
}
