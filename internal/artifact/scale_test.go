package artifact_test

// The cache at streaming scale: a thousand-plus concurrent fills and reads
// over a generated corpus, with the no-corruption, no-duplicate-trace, and
// stale-entry-recovery guarantees the streaming trainer depends on. Lives
// in an external test package because it exercises the cache through the
// real analysis pipeline (core + gencorpus), which the in-package unit
// tests cannot import.

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/gencorpus"
	"repro/internal/interp"
	"repro/internal/ir"
)

// scaleCorpus compiles a generated corpus once, returning the programs and
// their run configurations.
func scaleCorpus(t *testing.T, n int) ([]*ir.Program, []interp.Config) {
	t.Helper()
	spec := gencorpus.Spec{Seed: 31, N: n}
	progs := make([]*ir.Program, n)
	cfgs := make([]interp.Config, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := spec.Program(i).Entry()
			progs[i], errs[i] = e.Compile(codegen.Default)
			cfgs[i] = e.RunConfig()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
	}
	return progs, cfgs
}

func TestCacheAtStreamingScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const programs = 128
	const warmRounds = 8 // 128 * 8 = 1024 concurrent warm fills
	progs, cfgs := scaleCorpus(t, programs)
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Cold phase: every program analyzed concurrently through the cache.
	// Each unique (program, config) must be traced exactly once.
	before := interp.TotalRuns()
	cold := make([]*core.ProgramData, programs)
	var wg sync.WaitGroup
	for i := 0; i < programs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pd, err := core.AnalyzeCached(cache, progs[i], ir.LangC, cfgs[i])
			if err != nil {
				t.Errorf("cold analyze %d: %v", i, err)
				return
			}
			cold[i] = pd
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if traces := interp.TotalRuns() - before; traces != programs {
		t.Fatalf("cold fill did %d interpreter traces for %d unique programs", traces, programs)
	}

	// Warm storm: 1000+ concurrent reads of the filled cache. Zero traces,
	// and every result bit-identical to the cold analysis.
	before = interp.TotalRuns()
	for round := 0; round < warmRounds; round++ {
		for i := 0; i < programs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pd, err := core.AnalyzeCached(cache, progs[i], ir.LangC, cfgs[i])
				if err != nil {
					t.Errorf("warm analyze %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(pd.Vectors, cold[i].Vectors) {
					t.Errorf("program %d: warm vectors differ from cold", i)
				}
				if !reflect.DeepEqual(pd.Profile.Branches, cold[i].Profile.Branches) ||
					pd.Profile.Insns != cold[i].Profile.Insns {
					t.Errorf("program %d: warm profile differs from cold", i)
				}
			}(i)
		}
	}
	wg.Wait()
	if traces := interp.TotalRuns() - before; traces != 0 {
		t.Fatalf("warm storm did %d interpreter traces, want 0", traces)
	}
}

func TestCacheRecoversFromStaleEntries(t *testing.T) {
	const programs = 8
	progs, cfgs := scaleCorpus(t, programs)
	dir := t.TempDir()
	cache, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Poison the directory before any store: for every program, a garbage
	// file already sits at its exact cache path, plus unrelated junk that
	// shares the directory.
	for i := range progs {
		key := artifact.Key(progs[i], cfgs[i])
		if err := os.WriteFile(filepath.Join(dir, key+".espa"), []byte("ESPAgarbage-not-a-record"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, junk := range []string{"README.txt", "0000.espa", ".espa-dead.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Every poisoned entry must read as a miss, recompute, and overwrite.
	before := interp.TotalRuns()
	for i := range progs {
		if _, err := core.AnalyzeCached(cache, progs[i], ir.LangC, cfgs[i]); err != nil {
			t.Fatalf("analyze over poisoned entry %d: %v", i, err)
		}
	}
	if traces := interp.TotalRuns() - before; traces != programs {
		t.Fatalf("poisoned entries caused %d traces, want %d (all misses)", traces, programs)
	}

	// After the repair pass the entries are valid: zero further traces.
	before = interp.TotalRuns()
	for i := range progs {
		if _, err := core.AnalyzeCached(cache, progs[i], ir.LangC, cfgs[i]); err != nil {
			t.Fatalf("analyze after repair %d: %v", i, err)
		}
	}
	if traces := interp.TotalRuns() - before; traces != 0 {
		t.Fatalf("repaired entries still traced %d times", traces)
	}
}
