package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per replica. 64 points per
// member keeps the expected keyspace imbalance across a handful of
// replicas within a few percent without making membership changes costly.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over named replicas. Each member owns
// vnodes points on a 64-bit circle; a key belongs to the member owning the
// first point at or clockwise of the key's hash. Adding or removing a
// member therefore moves only that member's share (≈1/N) of the keyspace.
//
// Members can be marked drained: they keep their ring points (so the
// keyspace does not reshuffle during a graceful drain) but Lookup and
// Sequence skip over them.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by hash
	drained map[string]bool
	members []string // sorted, for deterministic iteration
}

type ringPoint struct {
	hash uint64
	name string
}

// NewRing returns an empty ring; vnodes <= 0 selects DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, drained: make(map[string]bool)}
}

// Add inserts a member's virtual nodes. Adding an existing member is a
// no-op (its drained mark is preserved).
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m == name {
			return
		}
	}
	r.members = append(r.members, name)
	sort.Strings(r.members)
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hashString(fmt.Sprintf("%s#%d", name, i)), name})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its virtual nodes entirely.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
	delete(r.drained, name)
	for i, m := range r.members {
		if m == name {
			r.members = append(r.members[:i], r.members[i+1:]...)
			break
		}
	}
}

// SetDrained marks (or clears) a member as drained without moving its
// keyspace share. Unknown names are remembered, so a drain mark set before
// Add still holds.
func (r *Ring) SetDrained(name string, drained bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if drained {
		r.drained[name] = true
	} else {
		delete(r.drained, name)
	}
}

// Drained reports whether a member is marked drained.
func (r *Ring) Drained(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.drained[name]
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.members...)
}

// Lookup returns the non-drained owner of key, or "" if the ring is empty
// or fully drained.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct non-drained members in ring order
// starting from key's owner — the failover candidate list. Every live
// member appears at most once; drained members never appear.
func (r *Ring) Sequence(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	var out []string
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.name] || r.drained[p.name] {
			continue
		}
		seen[p.name] = true
		out = append(out, p.name)
	}
	return out
}

// hashString is FNV-1a 64 finished with a splitmix64 avalanche, so nearby
// inputs (replica#0, replica#1, ...) land uniformly on the circle.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
