// Command esprouter fronts a set of espserve replicas with consistent-hash
// routing and bounded failover:
//
//	espserve -addr :8081 & espserve -addr :8082 & espserve -addr :8083 &
//	esprouter -addr :8080 -replicas http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Each /predict is routed by its content key (the submitted source, or the
// feature vectors) to one replica, so repeat submissions of one program hit
// that replica's compiled-program and artifact caches. A shed (429), server
// error (5xx), or unreachable replica fails the request over to the next
// distinct live replica on the ring, up to -failover attempts; responses
// relay verbatim, so clients speak exactly the single-server protocol.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "esprouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("esprouter", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (default 64)")
	failover := fs.Int("failover", 0, "max replicas one request may be offered to (default 3)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt upstream timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replicas == "" {
		return fmt.Errorf("-replicas is required")
	}
	var reps []*cluster.Replica
	for i, u := range strings.Split(*replicas, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		rep := &cluster.Replica{Name: fmt.Sprintf("replica-%d", i)}
		rep.SetURL(u)
		reps = append(reps, rep)
	}
	if len(reps) == 0 {
		return fmt.Errorf("-replicas held no usable URLs")
	}

	router := cluster.NewRouter(cluster.RouterConfig{
		Vnodes:      *vnodes,
		MaxFailover: *failover,
		Timeout:     *timeout,
	}, reps...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("esprouter: routing %d replicas on %s\n", len(reps), ln.Addr())
	return http.Serve(ln, router)
}
