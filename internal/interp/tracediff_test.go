package interp_test

// Corpus-wide differential coverage for the opt-in branch-outcome stream
// (RunTrace/RunReferenceTrace): over every corpus program plus a pinned
// generated slice, the stream must replay deterministically (same digest run
// to run), agree event for event between the micro-op and reference loops,
// and aggregate bit-identically to the Profile's counters and Calls. Runs
// under -race in CI via the interp entry of the race matrix.

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/interp"
)

// traceGenSeed pins the generated slice of the stream differential; change
// it and the test exercises a different (still deterministic) slice.
const (
	traceGenSeed = 1995
	traceGenN    = 10
)

// diffTraced runs one program through both traced interpreters twice and
// asserts determinism, uop/reference stream equality, and exact aggregation.
func diffTraced(t *testing.T, name string, e corpus.Entry) {
	t.Helper()
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.RunConfig()
	cfg.CollectEdges = true

	var uop1, uop2, ref1 interp.TraceAggregate
	puop1, err := interp.RunTrace(prog, cfg, &uop1)
	if err != nil {
		t.Fatal(err)
	}
	puop2, err := interp.RunTrace(prog, cfg, &uop2)
	if err != nil {
		t.Fatal(err)
	}
	pref1, err := interp.RunReferenceTrace(prog, cfg, &ref1)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic replay: two micro-op runs produce the same stream.
	if uop1.Digest() != uop2.Digest() || uop1.Events() != uop2.Events() {
		t.Fatalf("%s: stream not deterministic: %016x/%d vs %016x/%d",
			name, uop1.Digest(), uop1.Events(), uop2.Digest(), uop2.Events())
	}
	// Event-for-event agreement between the two dispatch loops (the digest
	// is order-sensitive, so equal digests mean equal streams).
	if uop1.Digest() != ref1.Digest() || uop1.Events() != ref1.Events() {
		t.Fatalf("%s: uop stream %016x/%d events, reference %016x/%d",
			name, uop1.Digest(), uop1.Events(), ref1.Digest(), ref1.Events())
	}
	// Exact aggregation to Profile.Branches/CondExec on both paths.
	for _, chk := range []struct {
		agg  *interp.TraceAggregate
		prof *interp.Profile
	}{{&uop1, puop1}, {&uop2, puop2}, {&ref1, pref1}} {
		if err := chk.agg.Check(chk.prof); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Tracing must not perturb the profile (including Calls): the traced
	// profiles must agree with each other and with an untraced run.
	plain, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffProfiles(t, name, puop1, pref1)
	diffProfiles(t, name, puop1, plain)
	for fn, n := range plain.Calls {
		if puop1.Calls[fn] != n || pref1.Calls[fn] != n {
			t.Fatalf("%s: calls diverge for %s: traced-uop %d traced-ref %d plain %d",
				name, fn, puop1.Calls[fn], pref1.Calls[fn], n)
		}
	}
	if len(plain.Calls) != len(puop1.Calls) || len(plain.Calls) != len(pref1.Calls) {
		t.Fatalf("%s: call maps diverge in size", name)
	}
}

// TestCorpusTraceStreamDifferential covers all 46 corpus programs.
func TestCorpusTraceStreamDifferential(t *testing.T) {
	armAllSites(t)
	entries := corpus.All()
	if len(entries) < 46 {
		t.Fatalf("corpus has %d programs, expected the full 46", len(entries))
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			diffTraced(t, e.Name, e)
		})
	}
}

// TestGenTraceStreamDifferential covers the pinned generated slice.
func TestGenTraceStreamDifferential(t *testing.T) {
	armAllSites(t)
	spec := gencorpus.Spec{Seed: traceGenSeed, N: traceGenN, Opt: gencorpus.Options{Prints: true}}
	for _, e := range spec.Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			diffTraced(t, e.Name, e)
		})
	}
}
