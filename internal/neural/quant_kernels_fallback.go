//go:build !amd64 || purego

package neural

func quantDot(a, b []int8) int32 {
	return quantDotGeneric(a, b)
}
