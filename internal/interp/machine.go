package interp

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
	"repro/internal/ir"
)

// Config controls an execution.
type Config struct {
	// Input is the program's input vector, served by the __input intrinsic
	// (index modulo length; an empty vector serves zeros).
	Input []int64
	// Seed seeds the deterministic generator behind the __rand intrinsic.
	Seed uint64
	// MaxInsns bounds execution; 0 means DefaultMaxInsns.
	MaxInsns int64
	// MemWords sizes the flat word memory; 0 means DefaultMemWords.
	MemWords int64
	// MaxCallDepth bounds activation nesting; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// CollectEdges enables per-edge transition counting (needed only for
	// the Figure 2 experiment; branch counts are always collected).
	CollectEdges bool
}

// Defaults for Config.
const (
	DefaultMaxInsns     = int64(50_000_000)
	DefaultMemWords     = int64(1 << 21)
	DefaultMaxCallDepth = 4096
)

// Canonical returns the configuration with every zero field replaced by its
// default, so two configurations that run identically compare (and hash)
// identically. The artifact cache keys on this form.
func (c Config) Canonical() Config {
	if c.MaxInsns == 0 {
		c.MaxInsns = DefaultMaxInsns
	}
	if c.MemWords == 0 {
		c.MemWords = DefaultMemWords
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = DefaultMaxCallDepth
	}
	return c
}

// Execution errors. The budget-class errors (fuel, stack, heap, call depth)
// wrap guard.ErrBudgetExceeded, so a caller running untrusted programs can
// classify "the program exceeded its configured resource budget" with one
// errors.Is check, distinct from genuine program faults like a division by
// zero or an out-of-bounds access.
var (
	ErrFuel       = fmt.Errorf("interp: instruction budget exhausted: %w", guard.ErrBudgetExceeded)
	ErrMemBounds  = errors.New("interp: memory access out of bounds")
	ErrDivZero    = errors.New("interp: integer division by zero")
	ErrStack      = fmt.Errorf("interp: stack overflow: %w", guard.ErrBudgetExceeded)
	ErrHeap       = fmt.Errorf("interp: heap exhausted: %w", guard.ErrBudgetExceeded)
	ErrNoMain     = errors.New("interp: program has no main function")
	ErrBadJump    = errors.New("interp: indirect jump index out of range")
	ErrCallDepth  = fmt.Errorf("interp: call depth exceeded: %w", guard.ErrBudgetExceeded)
	ErrBadRuntime = errors.New("interp: unknown runtime intrinsic")
)

// totalRuns counts completed Run/RunReference invocations process-wide. The
// artifact-cache tests use it to prove that a warm run performs zero
// interpreter traces.
var totalRuns atomic.Int64

// TotalRuns returns the number of interpreter executions started by this
// process (both the micro-op and the reference path).
func TotalRuns() int64 { return totalRuns.Load() }

// memBuf is a pooled word memory plus the dirty watermarks recorded when its
// previous execution released it: every word the program wrote lies in
// [1, loDirty) or [hiDirty, len) (stores below heapTop advance loDirty,
// stack-side stores lower hiDirty; word 0 is never written). Reuse only has
// to zero those two stripes instead of the whole default 16 MiB array, which
// on the corpus programs is a small fraction of it.
type memBuf struct {
	w                []int64
	loDirty, hiDirty int64
}

var memPool sync.Pool

// getMem returns a zeroed word memory of the requested size, reusing a
// pooled buffer when one of the same size is available.
func getMem(n int64) ([]int64, *memBuf) {
	if v := memPool.Get(); v != nil {
		b := v.(*memBuf)
		if int64(len(b.w)) == n {
			clear(b.w[1:b.loDirty])
			clear(b.w[b.hiDirty:])
			return b.w, b
		}
	}
	b := &memBuf{w: make([]int64, n)}
	return b.w, b
}

// machine is one execution of a program.
type machine struct {
	prog    *ir.Program
	cfg     Config
	mem     []int64
	buf     *memBuf
	loDirty int64 // all heap-side writes so far are below this
	hiDirty int64 // all stack-side writes so far are at or above this
	heapPtr int64 // bump allocator cursor
	heapTop int64 // stack/heap collision guard: stack may not descend below
	rng     uint64
	fuel    int64
	prof    *Profile
	depth   int

	// globals maps each global symbol to its resolved base address; kept
	// for image building on both paths.
	globals map[string]int64

	// counts/refs are the dense branch profile: every static conditional
	// branch site gets a slot at image-build time, and the dispatch loops
	// (micro-op and reference) count straight into the same slots — no map
	// lookups on the hot path. The Profile's Branches map is materialized
	// from these once, at run end.
	counts []BranchCount
	refs   []ir.BranchRef
	slotOf map[ir.BranchRef]int32

	// trace, when non-nil, receives every conditional-branch outcome in
	// program order (RunTrace/RunReferenceTrace). Both dispatch loops emit
	// to it right where they bump the dense counters, so the stream
	// aggregates bit-identically to the Profile by construction.
	trace TraceSink

	// Reference-path images (built by RunReference, or lazily by the
	// micro-op path when an activation switches to the reference loop to
	// reproduce an exact out-of-fuel error point).
	funcs    map[string]*funcImage
	funcList []*funcImage

	// Micro-op images (built by Run).
	ufuncs []*uimage
	umain  *uimage
}

// newMachine applies configuration defaults, lays out globals, and assigns
// the dense branch-count slots shared by both execution paths.
func newMachine(p *ir.Program, cfg Config) *machine {
	cfg = cfg.Canonical()
	m := &machine{
		prog:   p,
		cfg:    cfg,
		rng:    cfg.Seed*2862933555777941757 + 3037000493,
		fuel:   cfg.MaxInsns,
		slotOf: make(map[ir.BranchRef]int32),
	}
	m.mem, m.buf = getMem(cfg.MemWords)
	m.prof = &Profile{Program: p.Name, Calls: make(map[string]int64)}
	if cfg.CollectEdges {
		m.prof.Edges = make(map[EdgeRef]int64)
	}
	// Lay out globals starting at word 1 (0 stays null).
	m.globals = make(map[string]int64, len(p.Globals))
	base := int64(1)
	for i := range p.Globals {
		g := &p.Globals[i]
		m.globals[g.Name] = base
		for j, v := range g.Init {
			if base+int64(j) < cfg.MemWords {
				m.mem[base+int64(j)] = v
			}
		}
		base += g.Size
	}
	m.heapPtr = base
	// Stacks grow downward from the top of memory; the heap may not grow
	// into the reserved stack region and stacks may not descend below it.
	m.heapTop = cfg.MemWords - 64*1024
	if m.heapTop < m.heapPtr {
		m.heapTop = m.heapPtr
	}
	// The global-initializer writes above are the run's initial dirty stripe.
	m.loDirty = min(max(base, 1), cfg.MemWords)
	m.hiDirty = cfg.MemWords
	// Every static branch site gets a slot up front (so StaticSites covers
	// never-executed branches), in deterministic function/layout order.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Branch() != nil {
				m.slot(ir.BranchRef{Func: f.Name, Block: b.ID})
			}
		}
	}
	return m
}

// dirty records one written memory word in the watermarks. Stores below the
// heap/stack boundary advance loDirty; stack-side stores lower hiDirty.
func (m *machine) dirty(addr int64) {
	if addr < m.heapTop {
		if addr >= m.loDirty {
			m.loDirty = addr + 1
		}
	} else if addr < m.hiDirty {
		m.hiDirty = addr
	}
}

// release returns the word memory to the pool with its final dirty
// watermarks. Called exactly once per execution, success or error.
func (m *machine) release() {
	if m.buf == nil {
		return
	}
	m.buf.loDirty = m.loDirty
	m.buf.hiDirty = m.hiDirty
	m.mem = nil
	memPool.Put(m.buf)
	m.buf = nil
}

// slot returns the dense count index for a branch site, allocating one the
// first time the site is seen.
func (m *machine) slot(ref ir.BranchRef) int32 {
	s, ok := m.slotOf[ref]
	if !ok {
		s = int32(len(m.counts))
		m.slotOf[ref] = s
		m.refs = append(m.refs, ref)
		m.counts = append(m.counts, BranchCount{})
	}
	return s
}

// finish materializes the Profile from the dense counters.
func (m *machine) finish(ret int64) *Profile {
	m.prof.Result = ret
	m.prof.Insns = m.cfg.MaxInsns - m.fuel
	m.prof.Branches = make(map[ir.BranchRef]*BranchCount, len(m.refs))
	for i, ref := range m.refs {
		c := &m.counts[i]
		m.prof.Branches[ref] = c
		m.prof.CondExec += c.Executed
		m.prof.CondTaken += c.Taken
	}
	return m.prof
}

// Run executes the program's main function under the given configuration and
// returns the collected profile. It dispatches over the pre-decoded micro-op
// stream; RunReference retains the original per-instruction interpreter, and
// the two are bit-identical in every observable way (profiles, edges,
// results, outputs, and error points).
func Run(p *ir.Program, cfg Config) (*Profile, error) {
	totalRuns.Add(1)
	m := newMachine(p, cfg)
	defer m.release()
	m.buildUImages()
	if m.umain == nil {
		return nil, ErrNoMain
	}
	var args [12]int64 // 6 int (A0..A5) + 6 float arg registers
	ret, _, err := m.callU(m.umain, args, m.cfg.MemWords)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", p.Name, err)
	}
	return m.finish(ret), nil
}

// RunReference executes the program on the retained per-instruction
// reference interpreter. It exists so differential tests (and any caller
// that wants a second opinion) can check the micro-op path against the
// original semantics; production callers use Run.
func RunReference(p *ir.Program, cfg Config) (*Profile, error) {
	totalRuns.Add(1)
	m := newMachine(p, cfg)
	defer m.release()
	m.buildImages()
	mainFn := m.funcs["main"]
	if mainFn == nil {
		return nil, ErrNoMain
	}
	var args [12]int64
	ret, _, err := m.call(mainFn, args, m.cfg.MemWords)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", p.Name, err)
	}
	return m.finish(ret), nil
}

// branchTaken evaluates a conditional branch against the register file.
func branchTaken(in *ir.Instr, regs []int64) bool {
	switch in.Op {
	case ir.OpBeq:
		return regs[in.A] == 0
	case ir.OpBne:
		return regs[in.A] != 0
	case ir.OpBlt:
		return regs[in.A] < 0
	case ir.OpBle:
		return regs[in.A] <= 0
	case ir.OpBgt:
		return regs[in.A] > 0
	case ir.OpBge:
		return regs[in.A] >= 0
	case ir.OpBeq2:
		return regs[in.A] == regs[in.B]
	case ir.OpBne2:
		return regs[in.A] != regs[in.B]
	case ir.OpFbeq, ir.OpFbne, ir.OpFblt, ir.OpFble, ir.OpFbgt, ir.OpFbge:
		a := math.Float64frombits(uint64(regs[in.A]))
		switch in.Op {
		case ir.OpFbeq:
			return a == 0
		case ir.OpFbne:
			return a != 0
		case ir.OpFblt:
			return a < 0
		case ir.OpFble:
			return a <= 0
		case ir.OpFbgt:
			return a > 0
		case ir.OpFbge:
			return a >= 0
		}
	}
	panic("interp: branchTaken on non-branch " + in.Op.String())
}

func intALU(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.OpAddQ:
		return a + b, nil
	case ir.OpSubQ:
		return a - b, nil
	case ir.OpMulQ:
		return a * b, nil
	case ir.OpDivQ:
		if b == 0 {
			return 0, ErrDivZero
		}
		return a / b, nil
	case ir.OpRemQ:
		if b == 0 {
			return 0, ErrDivZero
		}
		return a % b, nil
	case ir.OpAndQ:
		return a & b, nil
	case ir.OpOrQ:
		return a | b, nil
	case ir.OpXorQ:
		return a ^ b, nil
	case ir.OpSllQ:
		return a << (uint64(b) & 63), nil
	case ir.OpSrlQ:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case ir.OpCmpEq:
		if a == b {
			return 1, nil
		}
		return 0, nil
	case ir.OpCmpLt:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case ir.OpCmpLe:
		if a <= b {
			return 1, nil
		}
		return 0, nil
	}
	panic("interp: intALU on " + op.String())
}

// runtime dispatches the OpRtcall intrinsics.
func (m *machine) runtime(id int64, regs []int64) error {
	switch id {
	case ir.RtAlloc:
		n := regs[ir.RegA0]
		if n < 0 {
			n = 0
		}
		if m.heapPtr+n >= m.heapTop {
			return ErrHeap
		}
		regs[ir.RegV0] = m.heapPtr
		m.heapPtr += n
	case ir.RtInput:
		if len(m.cfg.Input) == 0 {
			regs[ir.RegV0] = 0
		} else {
			i := regs[ir.RegA0] % int64(len(m.cfg.Input))
			if i < 0 {
				i += int64(len(m.cfg.Input))
			}
			regs[ir.RegV0] = m.cfg.Input[i]
		}
	case ir.RtPrint:
		m.prof.Outputs = append(m.prof.Outputs, regs[ir.RegA0])
	case ir.RtPrintF:
		m.prof.FOutputs = append(m.prof.FOutputs, math.Float64frombits(uint64(regs[ir.RegFA0])))
	case ir.RtRand:
		m.rng = m.rng*6364136223846793005 + 1442695040888963407
		regs[ir.RegV0] = int64((m.rng >> 33) & 0x7FFFFFFF)
	default:
		return ErrBadRuntime
	}
	return nil
}
