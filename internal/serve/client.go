package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Body-handling bounds: an error body is decoded through a limit so a
// misbehaving server cannot balloon memory, and up to maxDrainBytes of
// leftover body is drained before Close so the keep-alive connection goes
// back to the transport's pool instead of being torn down — without the
// drain, every retry dials a fresh connection.
const (
	maxErrorBodyBytes = 64 << 10
	maxDrainBytes     = 256 << 10
)

// APIError is a terminal (non-retryable) HTTP failure from the service:
// the request itself is bad and resending it cannot help.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: api error %d: %s", e.Status, e.Message)
}

// ClientConfig parameterizes a retrying Client.
type ClientConfig struct {
	// MaxAttempts bounds tries per Predict call, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 25ms); the delay
	// before attempt k is jittered around BaseDelay*2^(k-1).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt (default 10s) on
	// top of the caller's context.
	PerAttemptTimeout time.Duration
	// Seed makes the jitter deterministic for tests (default 1).
	Seed int64
	// HTTP is the underlying client (default a plain http.Client).
	HTTP *http.Client
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 25 * time.Millisecond
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.PerAttemptTimeout == 0 {
		c.PerAttemptTimeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	return c
}

// Client is a /predict client that absorbs transient failure: transport
// errors and 5xx responses are retried with jittered exponential backoff,
// and 429 shed responses honor the server's Retry-After hint. Terminal 4xx
// responses surface immediately as *APIError.
type Client struct {
	base string
	cfg  ClientConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a Client for the service at base (e.g. the httptest
// server URL or "http://host:port").
func NewClient(base string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Predict posts one request, retrying until it gets a terminal answer or
// runs out of attempts. The returned error wraps the last failure.
func (c *Client) Predict(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return nil, err
			}
		}
		resp, err := c.attempt(ctx, body)
		if err == nil {
			return resp, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryable(apiErr.Status) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("serve: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

func (c *Client) attempt(ctx context.Context, body []byte) (*PredictResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		// Drain whatever the decoder left (bounded) so the connection is
		// reusable, then close.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxDrainBytes))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, maxErrorBodyBytes)).Decode(&e)
		apiErr := &APIError{Status: resp.StatusCode, Message: e.Error}
		if resp.StatusCode == http.StatusTooManyRequests {
			if after, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				return nil, &shedError{APIError: apiErr, retryAfter: after}
			}
		}
		return nil, apiErr
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// maxRetryAfter caps the Retry-After hint the client will honor. RFC 7231
// lets a server name any delay; a client bound by MaxAttempts should not be
// parked for minutes by one header (misconfigured or clock-skewed servers
// produce wild HTTP-date hints in practice).
const maxRetryAfter = 30 * time.Second

// parseRetryAfter interprets a Retry-After header per RFC 7231 §7.1.3:
// either delta-seconds or an HTTP-date. The result is clamped to
// [0, maxRetryAfter] — a negative delta or a past date means "now", not an
// ignored hint and not a negative sleep. Returns ok=false for an absent or
// malformed header.
func parseRetryAfter(h string, now time.Time) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	var d time.Duration
	if secs, err := strconv.Atoi(h); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		d = t.Sub(now)
	} else {
		return 0, false
	}
	if d < 0 {
		d = 0
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// shedError carries the server's Retry-After hint alongside the 429.
type shedError struct {
	*APIError
	retryAfter time.Duration
}

func (e *shedError) Unwrap() error { return e.APIError }

// backoff computes the jittered exponential delay before the given attempt
// (attempt >= 1), honoring a Retry-After hint when the previous failure
// carried one.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	d := c.cfg.BaseDelay << (attempt - 1)
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	// Jitter to [d/2, d) so synchronized clients desynchronize, but never
	// come back before a server-supplied Retry-After.
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	d = d/2 + time.Duration(f*float64(d/2))
	var shed *shedError
	if errors.As(lastErr, &shed) && shed.retryAfter > d {
		d = shed.retryAfter
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
