// Package neural implements the feed-forward network of Section 3.1.1: one
// tanh hidden layer, an output unit y = 0.5·(tanh(v·h + a) + 1) normalized
// to [0,1], batch backpropagation minimizing the paper's weighted
// missed-branch / branch-incorrectly-taken loss
//
//	E = Σ_k n_k [ y_k (1 − t_k) + t_k (1 − y_k) ]
//
// (t_k the branch's true taken-probability, n_k its normalized execution
// weight), an adaptive learning rate (raised while error falls steadily,
// lowered otherwise), no momentum, and early stopping on the thresholded
// error to avoid overfitting.
package neural

import (
	"fmt"
	"math"
	"strings"
)

// Config parameterizes a network and its training run.
type Config struct {
	Inputs int
	Hidden int
	// Seed makes weight initialization deterministic.
	Seed uint64
	// LearnRate is the initial learning rate (default 0.2).
	LearnRate float64
	// MaxEpochs bounds training (default 400).
	MaxEpochs int
	// Patience is the number of epochs without thresholded-error improvement
	// before early stopping (default 25).
	Patience int
	// LRUp and LRDown are the adaptive learning-rate factors
	// (defaults 1.05 and 0.7).
	LRUp   float64
	LRDown float64
}

func (c Config) withDefaults() Config {
	if c.LearnRate == 0 {
		c.LearnRate = 0.2
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 400
	}
	if c.Patience == 0 {
		c.Patience = 25
	}
	if c.LRUp == 0 {
		c.LRUp = 1.05
	}
	if c.LRDown == 0 {
		c.LRDown = 0.7
	}
	return c
}

// Net is the branch-prediction network of Figure 1.
type Net struct {
	Inputs int         `json:"inputs"`
	Hidden int         `json:"hidden"`
	W      [][]float64 `json:"w"` // hidden × inputs
	B      []float64   `json:"b"` // hidden biases
	V      []float64   `json:"v"` // hidden → output
	A      float64     `json:"a"` // output bias
}

// New creates a network with small deterministic random weights.
func New(cfg Config) *Net {
	cfg = cfg.withDefaults()
	rng := newRNG(cfg.Seed)
	n := &Net{
		Inputs: cfg.Inputs,
		Hidden: cfg.Hidden,
		W:      make([][]float64, cfg.Hidden),
		B:      make([]float64, cfg.Hidden),
		V:      make([]float64, cfg.Hidden),
	}
	scale := 1 / math.Sqrt(float64(cfg.Inputs)+1)
	for i := 0; i < cfg.Hidden; i++ {
		n.W[i] = make([]float64, cfg.Inputs)
		for j := range n.W[i] {
			n.W[i][j] = rng.uniform() * scale
		}
		n.B[i] = rng.uniform() * scale
		n.V[i] = rng.uniform() * 0.5
	}
	n.A = rng.uniform() * 0.5
	return n
}

// HiddenActivations computes the hidden layer into h (length Hidden).
func (n *Net) HiddenActivations(x []float64, h []float64) {
	for i := 0; i < n.Hidden; i++ {
		z := n.B[i]
		wi := n.W[i]
		for j, xv := range x {
			z += wi[j] * xv
		}
		h[i] = math.Tanh(z)
	}
}

// Forward returns the network output for one input: the estimated
// probability (in [0,1]) that the branch is taken.
func (n *Net) Forward(x []float64) float64 {
	h := make([]float64, n.Hidden)
	n.HiddenActivations(x, h)
	return n.output(h)
}

func (n *Net) output(h []float64) float64 {
	z := n.A
	for i, hv := range h {
		z += n.V[i] * hv
	}
	return 0.5 * (math.Tanh(z) + 1)
}

// Loss computes the paper's weighted expected-miss loss over a dataset.
func (n *Net) Loss(xs [][]float64, t, w []float64) float64 {
	var e float64
	for k, x := range xs {
		y := n.Forward(x)
		e += w[k] * (y*(1-t[k]) + t[k]*(1-y))
	}
	return e
}

// ThresholdedLoss is the loss with the output thresholded to {0,1} — the
// early-stopping criterion ("training continues until the thresholded error
// of the net no longer decreases").
func (n *Net) ThresholdedLoss(xs [][]float64, t, w []float64) float64 {
	var e float64
	for k, x := range xs {
		y := 0.0
		if n.Forward(x) > 0.5 {
			y = 1
		}
		e += w[k] * (y*(1-t[k]) + t[k]*(1-y))
	}
	return e
}

// TrainResult reports a training run.
type TrainResult struct {
	Epochs           int
	FinalLoss        float64
	BestThresholded  float64
	FinalLearnRate   float64
	StoppedEarly     bool
	LossHistory      []float64
	ThresholdHistory []float64
}

// Train fits the network with batch gradient descent. xs are the encoded
// feature vectors, t the per-branch taken-probabilities (targets), and w the
// normalized branch weights n_k. Training mutates the receiver and restores
// the weights that achieved the best thresholded error.
func (n *Net) Train(cfg Config, xs [][]float64, t, w []float64) TrainResult {
	cfg = cfg.withDefaults()
	if len(xs) == 0 {
		return TrainResult{}
	}
	lr := cfg.LearnRate
	res := TrainResult{BestThresholded: math.Inf(1)}
	prevLoss := math.Inf(1)
	best := n.snapshot()
	sinceBest := 0

	gW := make([][]float64, n.Hidden)
	for i := range gW {
		gW[i] = make([]float64, n.Inputs)
	}
	gB := make([]float64, n.Hidden)
	gV := make([]float64, n.Hidden)
	h := make([]float64, n.Hidden)

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		// Zero gradients.
		for i := range gW {
			for j := range gW[i] {
				gW[i][j] = 0
			}
			gB[i] = 0
			gV[i] = 0
		}
		gA := 0.0
		var loss float64
		for k, x := range xs {
			n.HiddenActivations(x, h)
			y := n.output(h)
			loss += w[k] * (y*(1-t[k]) + t[k]*(1-y))
			// dE/dy = w_k (1 - 2 t_k); dy/dz = 0.5 (1 - u²) with u = 2y-1.
			u := 2*y - 1
			dOut := w[k] * (1 - 2*t[k]) * 0.5 * (1 - u*u)
			for i := 0; i < n.Hidden; i++ {
				gV[i] += dOut * h[i]
				dHid := dOut * n.V[i] * (1 - h[i]*h[i])
				gB[i] += dHid
				wi := n.W[i]
				gwi := gW[i]
				for j := range wi {
					gwi[j] += dHid * x[j]
				}
			}
			gA += dOut
		}
		// Batch update.
		for i := 0; i < n.Hidden; i++ {
			n.V[i] -= lr * gV[i]
			n.B[i] -= lr * gB[i]
			wi := n.W[i]
			gwi := gW[i]
			for j := range wi {
				wi[j] -= lr * gwi[j]
			}
		}
		n.A -= lr * gA

		// Adaptive learning rate: grow while the error drops, shrink when
		// it rises.
		if loss < prevLoss {
			lr *= cfg.LRUp
		} else {
			lr *= cfg.LRDown
		}
		prevLoss = loss

		thr := n.ThresholdedLoss(xs, t, w)
		res.LossHistory = append(res.LossHistory, loss)
		res.ThresholdHistory = append(res.ThresholdHistory, thr)
		res.Epochs = epoch + 1
		res.FinalLoss = loss
		res.FinalLearnRate = lr
		if thr < res.BestThresholded-1e-12 {
			res.BestThresholded = thr
			best = n.snapshot()
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				res.StoppedEarly = true
				break
			}
		}
	}
	n.restore(best)
	return res
}

type weights struct {
	w [][]float64
	b []float64
	v []float64
	a float64
}

func (n *Net) snapshot() weights {
	s := weights{
		w: make([][]float64, n.Hidden),
		b: append([]float64(nil), n.B...),
		v: append([]float64(nil), n.V...),
		a: n.A,
	}
	for i := range n.W {
		s.w[i] = append([]float64(nil), n.W[i]...)
	}
	return s
}

func (n *Net) restore(s weights) {
	for i := range n.W {
		copy(n.W[i], s.w[i])
	}
	copy(n.B, s.b)
	copy(n.V, s.v)
	n.A = s.a
}

// Describe renders the network architecture (Figure 1 of the paper) as
// text: input layer (static feature set), hidden layer, output unit.
func (n *Net) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: the branch prediction neural network\n")
	fmt.Fprintf(&sb, "  output  (branch probability)           : y = 0.5*(tanh(v.h + a) + 1)\n")
	fmt.Fprintf(&sb, "  hidden  (%3d units)                     : h_i = tanh(W_i.x + b_i)\n", n.Hidden)
	fmt.Fprintf(&sb, "  input   (%3d units, static feature set) : one-hot, z-normalized, '?' gated to 0\n", n.Inputs)
	return sb.String()
}

// rng is a small deterministic generator (xorshift64*) so results do not
// depend on math/rand implementation details.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// uniform returns a value in (-1, 1).
func (r *rng) uniform() float64 {
	return 2*float64(r.next()>>11)/float64(1<<53) - 1
}
