package gencorpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
)

// ShardedCorpus slices a corpus into fixed-size shards and feeds each one
// through the standard analysis pipeline — Entry.Compile, then the cached
// profile/featurize path — so core.TrainStreaming can train on thousands of
// generated programs incrementally. It implements core.ShardSource.
//
// Determinism: shard boundaries are fixed by entry order, per-entry analysis
// is a pure function of (entry, target), and although entries within a shard
// analyze in parallel, the returned examples are assembled in entry order —
// so Load(i) is bit-identical across runs, worker counts, and cache
// temperature.
type ShardedCorpus struct {
	// Entries is the corpus in training order (e.g. Spec.Entries()).
	Entries []corpus.Entry
	// Size is the shard size in programs (default 64).
	Size int
	// Cache, when non-nil, backs analysis with the content-addressed
	// artifact cache: a warm run does zero interpreter traces.
	Cache *artifact.Cache
	// Target selects the compilation target (default codegen.Default).
	Target codegen.Target
}

func (c *ShardedCorpus) target() codegen.Target {
	if c.Target == (codegen.Target{}) {
		return codegen.Default
	}
	return c.Target
}

func (c *ShardedCorpus) size() int {
	if c.Size <= 0 {
		return 64
	}
	return c.Size
}

// NumShards implements core.ShardSource.
func (c *ShardedCorpus) NumShards() int {
	return (len(c.Entries) + c.size() - 1) / c.size()
}

// shard returns the entry range of shard i.
func (c *ShardedCorpus) shard(i int) []corpus.Entry {
	lo := i * c.size()
	hi := lo + c.size()
	if hi > len(c.Entries) {
		hi = len(c.Entries)
	}
	return c.Entries[lo:hi]
}

// ShardID implements core.ShardSource: a digest of every entry's identity
// and content, so a checkpoint can never be replayed against a shard whose
// programs, inputs, or seeds have changed.
func (c *ShardedCorpus) ShardID(i int) string {
	h := sha256.New()
	fmt.Fprintf(h, "genshard-1\x00%+v\x00", c.target())
	for _, e := range c.shard(i) {
		fmt.Fprintf(h, "%s\x00%s\x00%v\x00%d\n", e.Name, e.Source, e.Input, e.Seed)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Load implements core.ShardSource: compile and analyze every entry of
// shard i (in parallel, through the artifact cache) and return the pooled
// training examples in entry order.
func (c *ShardedCorpus) Load(i int) ([]core.Example, error) {
	entries := c.shard(i)
	tgt := c.target()
	perEntry := make([][]core.Example, len(entries))
	errs := make([]error, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				e := entries[j]
				prog, err := e.Compile(tgt)
				if err != nil {
					errs[j] = err
					continue
				}
				pd, err := core.AnalyzeCached(c.Cache, prog, e.Language, e.RunConfig())
				if err != nil {
					errs[j] = err
					continue
				}
				perEntry[j] = pd.Examples()
			}
		}()
	}
	for j := range entries {
		next <- j
	}
	close(next)
	wg.Wait()
	var out []core.Example
	for j := range entries {
		if errs[j] != nil {
			return nil, errs[j]
		}
		out = append(out, perEntry[j]...)
	}
	return out, nil
}
