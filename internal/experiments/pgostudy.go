package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pgo"
	"repro/internal/stats"
)

// PGOGenSeed pins the generated-corpus slice of the guided-optimization
// study; EXPERIMENTS.md documents the pinned value.
const PGOGenSeed = 1995

// PGORow is one program's simulated cycle count under each optimization
// mode: the unguided optimizer (cmov and unrolling applied everywhere, no
// layout) against the same optimizer guided by ESP probabilities, by the
// Ball/Larus+DSHC heuristics, and by a measured ("perfect") profile.
type PGORow struct {
	Program   string       `json:"program"`
	Suite     corpus.Suite `json:"suite,omitempty"`
	Unguided  int64        `json:"unguided"`
	ESP       int64        `json:"esp"`
	Heuristic int64        `json:"heuristic"`
	Perfect   int64        `json:"perfect"`
}

// PGOStudyResult is the ESP-guided code optimization study: the paper's
// Section 6 direction ("incorporate this branch probability data to
// perform program-based profile estimation") carried through to its
// payoff, profile-guided optimization without profiles.
type PGOStudyResult struct {
	// Rows covers the 46 corpus programs in presentation order, then the
	// generated slice.
	Rows []PGORow `json:"rows"`
	// Total sums cycles over the real corpus programs only (the generated
	// slice varies with GenN, so totals over it are reported separately).
	Total PGORow `json:"total"`
	// GenTotal sums cycles over the generated slice (zero-valued when the
	// study ran with GenN = 0).
	GenTotal PGORow `json:"gen_total"`
	// GenN is the size of the generated slice included.
	GenN int `json:"gen_n"`
}

// espSavings is the per-program fractional cycle saving of ESP guidance
// over the unguided optimizer, keyed by program (real corpus only).
func (r *PGOStudyResult) espSavings() map[string]float64 {
	out := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		if row.Suite == corpus.SuiteGenerated || row.Unguided == 0 {
			continue
		}
		out[row.Program] = 1 - float64(row.ESP)/float64(row.Unguided)
	}
	return out
}

// PGOStudy runs the guided-optimization comparison over all 46 corpus
// programs plus genN generated programs (seed PGOGenSeed, all mixes).
//
// ESP guidance is honest: C and Fortran programs are predicted by
// leave-one-out models within their language group (exactly the Table 4
// protocol), Scheme programs leave-one-out within the Scheme group, and
// generated programs use a model trained on the full real C group —
// held out by construction.
//
// Every guided binary is differentially verified against the unguided one
// before its cycles count: printed outputs, float outputs, and the exit
// result must be bit-identical.
func PGOStudy(ctx *Context, espCfg core.Config, genN int) (*PGOStudyResult, error) {
	models, cModel, err := pgoModels(ctx, espCfg)
	if err != nil {
		return nil, err
	}
	entries := corpus.All()
	if genN > 0 {
		spec := gencorpus.Spec{Seed: PGOGenSeed, N: genN, Opt: gencorpus.Options{Prints: true}}
		entries = append(entries, spec.Entries()...)
	}

	rows := make([]PGORow, len(entries))
	errs := make([]error, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				e := entries[i]
				m := models[e.Name]
				if m == nil {
					m = cModel // generated programs: full-C-group model
				}
				rows[i], errs[i] = pgoRow(e, m)
			}
		}()
	}
	for i := range entries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: pgo: %s: %w", entries[i].Name, err)
		}
	}

	res := &PGOStudyResult{Rows: rows, GenN: genN}
	for _, row := range rows {
		tot := &res.Total
		if row.Suite == corpus.SuiteGenerated {
			tot = &res.GenTotal
		}
		tot.Unguided += row.Unguided
		tot.ESP += row.ESP
		tot.Heuristic += row.Heuristic
		tot.Perfect += row.Perfect
	}
	res.Total.Program = "Total (46 programs)"
	res.GenTotal.Program = fmt.Sprintf("Total (%d generated)", genN)
	return res, nil
}

// pgoModels trains the leave-one-out ESP models for every real corpus
// program, plus the full-C-group model used for generated programs.
func pgoModels(ctx *Context, espCfg core.Config) (map[string]*core.Model, *core.Model, error) {
	models := make(map[string]*core.Model)
	var cGroup []*core.ProgramData
	for _, lang := range []ir.Language{ir.LangC, ir.LangFortran} {
		group, err := ctx.LanguageData(lang, codegen.Default)
		if err != nil {
			return nil, nil, err
		}
		if lang == ir.LangC {
			cGroup = group
		}
		looTrain(models, group, espCfg)
	}
	schemeGroup, err := ctx.Batch(corpus.BySuite(corpus.SuiteScheme), codegen.Default)
	if err != nil {
		return nil, nil, err
	}
	looTrain(models, schemeGroup, espCfg)
	return models, core.Train(cGroup, espCfg), nil
}

// looTrain trains one held-out model per group member into models.
func looTrain(models map[string]*core.Model, group []*core.ProgramData, cfg core.Config) {
	for hold := range group {
		var train []*core.ProgramData
		for j, pd := range group {
			if j != hold {
				train = append(train, pd)
			}
		}
		models[group[hold].Name] = core.Train(train, cfg)
	}
}

// pgoRow measures one program under all four modes.
func pgoRow(e corpus.Entry, model *core.Model) (PGORow, error) {
	opt := pgo.DefaultOptions()
	ast, err := e.Parse()
	if err != nil {
		return PGORow{}, err
	}
	run := e.RunConfig()
	run.CollectEdges = true

	unguided, err := pgo.Unguided(ast, e.Language, opt)
	if err != nil {
		return PGORow{}, err
	}
	baseProf, err := interp.Run(unguided, run)
	if err != nil {
		return PGORow{}, fmt.Errorf("unguided run: %w", err)
	}
	baseCycles, err := interp.CycleCount(unguided, baseProf)
	if err != nil {
		return PGORow{}, fmt.Errorf("unguided cycles: %w", err)
	}
	row := PGORow{Program: e.Name, Suite: e.Suite, Unguided: baseCycles}

	measure := func(name string, srcFor pgo.SourceFactory) (int64, error) {
		prog, err := pgo.Optimize(ast, e.Language, srcFor, opt)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		prof, err := interp.Run(prog, run)
		if err != nil {
			return 0, fmt.Errorf("%s: guided run: %w", name, err)
		}
		if prof.Result != baseProf.Result ||
			!reflect.DeepEqual(prof.Outputs, baseProf.Outputs) ||
			!reflect.DeepEqual(prof.FOutputs, baseProf.FOutputs) {
			return 0, fmt.Errorf("%s: guided binary changed observable behaviour", name)
		}
		cycles, err := interp.CycleCount(prog, prof)
		if err != nil {
			return 0, fmt.Errorf("%s: cycles: %w", name, err)
		}
		return cycles, nil
	}
	if row.ESP, err = measure("esp", pgo.Fixed(&pgo.Model{M: model})); err != nil {
		return PGORow{}, err
	}
	if row.Heuristic, err = measure("heuristic", pgo.Fixed(pgo.NewHeuristic())); err != nil {
		return PGORow{}, err
	}
	if row.Perfect, err = measure("perfect", pgo.MeasuredFactory(e.RunConfig())); err != nil {
		return PGORow{}, err
	}
	return row, nil
}

// Render formats the study: per-program cycle counts, suite-separated,
// with totals, then the per-program ESP savings through the shared
// per-program renderer.
func (r *PGOStudyResult) Render() string {
	t := stats.NewTable("Program", "Unguided", "ESP", "Heuristic", "Perfect")
	emit := func(row PGORow) {
		t.Row(row.Program, row.Unguided, row.ESP, row.Heuristic, row.Perfect)
	}
	var lastSuite corpus.Suite
	for i, row := range r.Rows {
		if i > 0 && row.Suite != lastSuite {
			t.Separator()
		}
		lastSuite = row.Suite
		emit(row)
	}
	t.Separator()
	emit(r.Total)
	if r.GenN > 0 {
		emit(r.GenTotal)
	}
	head := "ESP-guided optimization: simulated cycles (layout + gated cmov/unrolling + cold splitting)\n"
	return head + t.String() +
		"\nPer-program ESP cycle savings vs unguided\n" +
		renderPerProgram("Saved", r.espSavings(), stats.Pct1) + pctFootnote
}
