package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// This file is the retained reference interpreter: the original
// per-instruction dispatch loop, kept bit-for-bit so the micro-op path can
// be differentially tested against it — and so an activation that is about
// to run out of fuel can hand the rest of its execution to the reference
// loop, reproducing the original error point exactly (see callU's uCharge
// case).

// funcImage is a function pre-resolved for reference dispatch: every
// symbolic operand (block IDs, global symbols, callee names) is rewritten to
// a dense index so the interpreter loop never consults a map.
type funcImage struct {
	fn     *ir.Func
	blocks []blockImage
}

// blockImage carries the per-instruction resolved operands of one block.
// aux is indexed by pc and its meaning depends on the opcode there:
//
//	conditional branch → branch-count slot (high 32 bits) | taken-target
//	                     block index (low 32 bits)
//	OpBr               → target block index
//	OpJmp              → index into jmp, the resolved target table
//	OpBsr              → callee index into machine.funcList, -1 if unknown
//	OpLda              → global base + immediate, or unknownSym
//
// aux stays nil for blocks with none of these opcodes.
type blockImage struct {
	aux []int64
	jmp [][]int32
}

// unknownSym marks an OpLda/OpBsr operand that did not resolve at image-build
// time; executing it reports the same error the unresolved lookup used to.
const unknownSym = math.MinInt64

// buildImages pre-resolves every function for reference dispatch. Symbol
// resolution errors are deferred to execution via unknownSym sentinels so
// unreachable bad code stays harmless.
func (m *machine) buildImages() {
	if m.funcList != nil {
		return
	}
	p := m.prog
	m.funcs = make(map[string]*funcImage, len(p.Funcs))
	m.funcList = make([]*funcImage, 0, len(p.Funcs))
	fidx := make(map[string]int, len(p.Funcs))
	for _, f := range p.Funcs {
		fi := &funcImage{fn: f, blocks: make([]blockImage, len(f.Blocks))}
		fidx[f.Name] = len(m.funcList)
		m.funcList = append(m.funcList, fi)
		m.funcs[f.Name] = fi
	}
	for _, fi := range m.funcList {
		f := fi.fn
		idToIdx := make(map[int]int, len(f.Blocks))
		for i, b := range f.Blocks {
			idToIdx[b.ID] = i
		}
		for bi := range f.Blocks {
			b := f.Blocks[bi]
			blk := &fi.blocks[bi]
			ensure := func() []int64 {
				if blk.aux == nil {
					blk.aux = make([]int64, len(b.Insns))
				}
				return blk.aux
			}
			for pc := range b.Insns {
				in := &b.Insns[pc]
				switch {
				case in.Op.IsCondBranch():
					s := m.slot(ir.BranchRef{Func: f.Name, Block: b.ID})
					ensure()[pc] = int64(s)<<32 |
						int64(uint32(int32(idToIdx[in.Target])))
				case in.Op == ir.OpBr:
					ensure()[pc] = int64(idToIdx[in.Target])
				case in.Op == ir.OpJmp:
					tg := make([]int32, len(in.Targets))
					for i, id := range in.Targets {
						tg[i] = int32(idToIdx[id])
					}
					ensure()[pc] = int64(len(blk.jmp))
					blk.jmp = append(blk.jmp, tg)
				case in.Op == ir.OpBsr:
					if i, ok := fidx[in.Sym]; ok {
						ensure()[pc] = int64(i)
					} else {
						ensure()[pc] = unknownSym
					}
				case in.Op == ir.OpLda:
					if base, ok := m.globals[in.Sym]; ok {
						ensure()[pc] = base + in.Imm
					} else {
						ensure()[pc] = unknownSym
					}
				}
			}
		}
	}
}

// call executes one function activation on the reference path. args holds
// the incoming A0..A5 and FA0..FA5 register values; sp is the caller's stack
// pointer.
func (m *machine) call(fi *funcImage, args [12]int64, sp int64) (retInt int64, retFloat int64, err error) {
	if m.depth++; m.depth > m.cfg.MaxCallDepth {
		return 0, 0, ErrCallDepth
	}
	defer func() { m.depth-- }()

	var regs [ir.NumRegs]int64
	for i := 0; i < 6; i++ {
		regs[int(ir.RegA0)+i] = args[i]
		regs[int(ir.RegFA0)+i] = args[6+i]
	}
	sp -= fi.fn.FrameSize
	if sp < m.heapTop {
		return 0, 0, ErrStack
	}
	regs[ir.RegSP] = sp
	m.prof.Calls[fi.fn.Name]++
	return m.refLoop(fi, &regs, sp, 0, 0)
}

// refLoop runs the reference dispatch loop from an arbitrary resume point
// (blockIdx, startPC) to function return. call enters it at (0, 0); the
// micro-op path enters it mid-block when a fuel charge cannot be covered, so
// the remaining instructions replay under the original per-instruction fuel
// accounting and fail at exactly the original point.
func (m *machine) refLoop(fi *funcImage, regs *[ir.NumRegs]int64, sp int64, blockIdx, startPC int) (retInt int64, retFloat int64, err error) {
	fn := fi.fn
	for {
		b := fn.Blocks[blockIdx]
		bim := &fi.blocks[blockIdx]
		nextIdx := blockIdx + 1 // default: fall through in layout order
		fell := true
		for pc := startPC; pc < len(b.Insns); pc++ {
			in := &b.Insns[pc]
			if m.fuel--; m.fuel < 0 {
				return 0, 0, ErrFuel
			}
			// Reads of the zero registers always see zero.
			regs[ir.RegZero] = 0
			regs[ir.RegFZero] = 0
			switch in.Op {
			case ir.OpAddQ, ir.OpSubQ, ir.OpMulQ, ir.OpDivQ, ir.OpRemQ,
				ir.OpAndQ, ir.OpOrQ, ir.OpXorQ, ir.OpSllQ, ir.OpSrlQ,
				ir.OpCmpEq, ir.OpCmpLt, ir.OpCmpLe:
				bval := regs[in.B]
				if in.UseImm {
					bval = in.Imm
				}
				v, derr := intALU(in.Op, regs[in.A], bval)
				if derr != nil {
					return 0, 0, derr
				}
				regs[in.Dst] = v
			case ir.OpLdiQ:
				regs[in.Dst] = in.Imm
			case ir.OpLda:
				addr := bim.aux[pc]
				if addr == unknownSym {
					return 0, 0, fmt.Errorf("interp: unknown global %q", in.Sym)
				}
				regs[in.Dst] = addr
			case ir.OpMov, ir.OpFMov:
				regs[in.Dst] = regs[in.A]
			case ir.OpCmovEq:
				if regs[in.A] == 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpCmovNe:
				if regs[in.A] != 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpFCmovEq:
				if math.Float64frombits(uint64(regs[in.A])) == 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpFCmovNe:
				if math.Float64frombits(uint64(regs[in.A])) != 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpLdq, ir.OpLdt:
				addr := regs[in.A] + in.Imm
				if addr < 0 || addr >= int64(len(m.mem)) {
					return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fn.Name)
				}
				regs[in.Dst] = m.mem[addr]
			case ir.OpStq, ir.OpStt:
				addr := regs[in.A] + in.Imm
				if addr <= 0 || addr >= int64(len(m.mem)) {
					return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fn.Name)
				}
				m.mem[addr] = regs[in.B]
				m.dirty(addr)
			case ir.OpAddT, ir.OpSubT, ir.OpMulT, ir.OpDivT:
				a := math.Float64frombits(uint64(regs[in.A]))
				bv := math.Float64frombits(uint64(regs[in.B]))
				var r float64
				switch in.Op {
				case ir.OpAddT:
					r = a + bv
				case ir.OpSubT:
					r = a - bv
				case ir.OpMulT:
					r = a * bv
				case ir.OpDivT:
					r = a / bv
				}
				regs[in.Dst] = int64(math.Float64bits(r))
			case ir.OpFAbs:
				a := math.Float64frombits(uint64(regs[in.A]))
				regs[in.Dst] = int64(math.Float64bits(math.Abs(a)))
			case ir.OpFNeg:
				a := math.Float64frombits(uint64(regs[in.A]))
				regs[in.Dst] = int64(math.Float64bits(-a))
			case ir.OpLdiT:
				regs[in.Dst] = in.Imm
			case ir.OpCvtQT:
				regs[in.Dst] = int64(math.Float64bits(float64(regs[in.A])))
			case ir.OpCvtTQ:
				regs[in.Dst] = int64(math.Float64frombits(uint64(regs[in.A])))
			case ir.OpCmpTEq, ir.OpCmpTLt, ir.OpCmpTLe:
				a := math.Float64frombits(uint64(regs[in.A]))
				bv := math.Float64frombits(uint64(regs[in.B]))
				var cond bool
				switch in.Op {
				case ir.OpCmpTEq:
					cond = a == bv
				case ir.OpCmpTLt:
					cond = a < bv
				case ir.OpCmpTLe:
					cond = a <= bv
				}
				r := 0.0
				if cond {
					r = 1.0
				}
				regs[in.Dst] = int64(math.Float64bits(r))
			case ir.OpBeq, ir.OpBne, ir.OpBlt, ir.OpBle, ir.OpBgt, ir.OpBge,
				ir.OpFbeq, ir.OpFbne, ir.OpFblt, ir.OpFble, ir.OpFbgt, ir.OpFbge,
				ir.OpBeq2, ir.OpBne2:
				a := bim.aux[pc]
				bc := &m.counts[int32(a>>32)]
				bc.Executed++
				taken := branchTaken(in, regs[:])
				if taken {
					bc.Taken++
					nextIdx = int(int32(uint32(a)))
				}
				if m.trace != nil {
					m.trace.TraceBranch(int32(a>>32), taken)
				}
				fell = false
				goto endBlock
			case ir.OpBr:
				nextIdx = int(bim.aux[pc])
				fell = false
				goto endBlock
			case ir.OpJmp:
				tgts := bim.jmp[bim.aux[pc]]
				idx := regs[in.A]
				if idx < 0 || idx >= int64(len(tgts)) {
					return 0, 0, ErrBadJump
				}
				nextIdx = int(tgts[idx])
				fell = false
				goto endBlock
			case ir.OpBsr:
				ci := bim.aux[pc]
				if ci == unknownSym {
					return 0, 0, fmt.Errorf("interp: call to unknown function %q", in.Sym)
				}
				callee := m.funcList[ci]
				var cargs [12]int64
				for i := 0; i < 6; i++ {
					cargs[i] = regs[int(ir.RegA0)+i]
					cargs[6+i] = regs[int(ir.RegFA0)+i]
				}
				ri, rf, cerr := m.call(callee, cargs, sp)
				if cerr != nil {
					return 0, 0, cerr
				}
				regs[ir.RegV0] = ri
				regs[ir.RegFV0] = rf
			case ir.OpRet:
				return regs[ir.RegV0], regs[ir.RegFV0], nil
			case ir.OpRtcall:
				if rerr := m.runtime(in.Imm, regs[:]); rerr != nil {
					return 0, 0, rerr
				}
			default:
				return 0, 0, fmt.Errorf("interp: unimplemented opcode %s", in.Op)
			}
		}
	endBlock:
		startPC = 0
		if fell && blockIdx+1 >= len(fn.Blocks) {
			return 0, 0, fmt.Errorf("interp: %s: control fell off the end", fn.Name)
		}
		if m.prof.Edges != nil {
			from := fn.Blocks[blockIdx].ID
			to := fn.Blocks[nextIdx].ID
			m.prof.Edges[EdgeRef{Func: fn.Name, From: from, To: to}]++
		}
		blockIdx = nextIdx
	}
}
