package experiments

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/heuristics"
	"repro/internal/stats"
)

// Table7Row is espresso's heuristic decomposition under one compiler.
type Table7Row struct {
	Compiler string
	B        heuristics.Breakdown
	Perfect  float64
	Insns    int64
	// PctLoopBranches is the share of dynamic branches that are loop
	// branches — the quantity GEM's unrolling visibly reduces.
	PctLoopBranches float64
}

// Table7Result is the compiler-sensitivity study (Table 7 of the paper):
// one program under the four compiler configurations.
type Table7Result struct {
	Program string
	Rows    []Table7Row
}

// Table7Program is the paper's choice of program for the compiler study.
const Table7Program = "espresso"

// Table7 compiles espresso under each compiler configuration and
// decomposes the APHC heuristics' behaviour.
func Table7(ctx *Context) (*Table7Result, error) {
	e, ok := corpus.ByName(Table7Program)
	if !ok {
		return nil, fmt.Errorf("experiments: corpus has no %q", Table7Program)
	}
	res := &Table7Result{Program: e.Name}
	aphc := heuristics.NewAPHC()
	for _, tgt := range codegen.Compilers {
		pd, err := ctx.Data(e, tgt)
		if err != nil {
			return nil, err
		}
		b := heuristics.BreakdownOf(pd.Sites, pd.Profile, aphc)
		res.Rows = append(res.Rows, Table7Row{
			Compiler:        tgt.Name,
			B:               b,
			Perfect:         heuristics.MissRate(pd.Sites, pd.Profile, &heuristics.Perfect{Prof: pd.Profile}),
			Insns:           pd.Profile.Insns,
			PctLoopBranches: 100 - b.PctNonLoop(),
		})
	}
	return res, nil
}

// Render formats the table in the paper's layout.
func (r *Table7Result) Render() string {
	t := stats.NewTable("Compiler", "% Loop Branches", "Loop Miss Rate", "% Non-Loop",
		"% Covered", "Miss For Heuristics", "Miss With Default", "Overall", "Perfect")
	for _, row := range r.Rows {
		t.Row(row.Compiler,
			stats.Pct1(row.PctLoopBranches/100),
			stats.Pct(row.B.LoopMissRate()),
			stats.Pct1(row.B.PctNonLoop()/100),
			stats.Pct1(row.B.PctCovered()/100),
			stats.Pct(row.B.MissForHeuristics()),
			stats.Pct(row.B.MissWithDefault()),
			stats.Pct(row.B.OverallMissRate()),
			stats.Pct(row.Perfect))
	}
	return fmt.Sprintf("Table 7: accuracy of prediction heuristics for %s under different compilers\n",
		r.Program) + t.String()
}
