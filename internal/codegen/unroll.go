package codegen

import "repro/internal/minic"

// unrollBlock rewrites counted for-loops in the statement tree, unrolling
// each eligible loop body k times. This reproduces the DEC GEM compiler
// behaviour from Table 7: "The GEM compiler unrolled one loop in the main
// routine, inserting more forward branches and reducing the dynamic
// frequency of loop edges." The transformation runs on the unchecked AST;
// each replicated body copy is wrapped in its own block so local
// declarations stay scoped, and an "if (!cond) break" guard between copies
// preserves semantics exactly.
//
// allow, when non-nil, is the profile-guided gate: only loops whose source
// position it approves are unrolled. Unrolling a cold loop inflates code
// for no cycle win (and pessimizes the entry case, which pays the full
// guard chain on a trip count of one), so estimators restrict the
// transformation to loops they predict hot with a high continue
// probability. A nil gate preserves the historical unroll-everything
// behaviour of the GEM-style target.
func unrollBlock(s minic.Stmt, k int, allow func(minic.Pos) bool) minic.Stmt {
	switch st := s.(type) {
	case nil:
		return nil
	case *minic.BlockStmt:
		for i := range st.Stmts {
			st.Stmts[i] = unrollBlock(st.Stmts[i], k, allow)
		}
		return st
	case *minic.IfStmt:
		st.Then = unrollBlock(st.Then, k, allow)
		st.Else = unrollBlock(st.Else, k, allow)
		return st
	case *minic.WhileStmt:
		st.Body = unrollBlock(st.Body, k, allow)
		return st
	case *minic.DoStmt:
		st.Body = unrollBlock(st.Body, k, allow)
		return st
	case *minic.ForStmt:
		st.Body = unrollBlock(st.Body, k, allow)
		if unrollable(st) && (allow == nil || allow(st.Pos)) {
			return unrollFor(st, k)
		}
		return st
	default:
		return s
	}
}

// unrollable accepts for-loops with a test, an induction-style post
// assignment to a plain variable, and a body that cannot escape the loop
// (no break/continue/return at loop level).
func unrollable(st *minic.ForStmt) bool {
	if st.Cond == nil || st.Post == nil {
		return false
	}
	post, ok := st.Post.(*minic.AssignStmt)
	if !ok {
		return false
	}
	if _, ok := post.Target.(*minic.Ident); !ok {
		return false
	}
	return !minic.HasLoopEscapes(st.Body)
}

// unrollFor produces the k-times unrolled loop.
func unrollFor(st *minic.ForStmt, k int) *minic.ForStmt {
	body := &minic.BlockStmt{Pos: st.Pos}
	for i := 0; i < k-1; i++ {
		body.Stmts = append(body.Stmts,
			asBlock(minic.CloneStmt(st.Body)),
			minic.CloneStmt(st.Post),
			&minic.IfStmt{
				Pos:  st.Pos,
				Cond: &minic.UnExpr{Pos: st.Pos, Op: minic.OpNot, X: minic.CloneExpr(st.Cond)},
				Then: &minic.BreakStmt{Pos: st.Pos},
			},
		)
	}
	body.Stmts = append(body.Stmts, asBlock(st.Body))
	return &minic.ForStmt{Pos: st.Pos, Init: st.Init, Cond: st.Cond, Post: st.Post, Body: body}
}

// asBlock wraps a statement in its own scope.
func asBlock(s minic.Stmt) minic.Stmt {
	if b, ok := s.(*minic.BlockStmt); ok {
		return b
	}
	return &minic.BlockStmt{Stmts: []minic.Stmt{s}}
}
