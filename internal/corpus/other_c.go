package corpus

import "repro/internal/ir"

// The "Other C" suite: analogs of the fifteen Unix tools of Table 3 (bc,
// bison, burg, flex, grep, gzip, indent, od, perl, sed, siod, sort, tex,
// wdiff, yacr). Each program reproduces its namesake's dominant branch
// idioms: token dispatch chains for the language tools, scanning loops for
// the text tools, hash chains for gzip, pointer-walking lists for siod.

func init() {
	register(Entry{
		Name: "bc", Suite: SuiteOtherC, Language: ir.LangC, Seed: 101,
		About: "arbitrary-precision calculator: stack-machine expression evaluation over a synthetic token stream; flat branch profile, less than half the branches taken",
		Input: []int64{2600},
		Source: `
// bc: evaluate a stream of postfix expression tokens on an operand stack.
int stack[64];
int sp;
int errs;

void push(int v) {
	if (sp < 64) {
		stack[sp] = v;
		sp = sp + 1;
	} else {
		errs = errs + 1;
	}
}

int pop() {
	if (sp > 0) {
		sp = sp - 1;
		return stack[sp];
	}
	errs = errs + 1;
	return 0;
}

int apply(int op, int a, int b) {
	if (op == 0) { return lib_clamp(a + b, 0 - 1000000, 1000000); }
	if (op == 1) { return lib_clamp(a - b, 0 - 1000000, 1000000); }
	if (op == 2) { return (a % 1000) * (b % 1000); }
	if (op == 3) {
		if (b != 0) { return a / b; }
		errs = errs + 1;
		return 0;
	}
	if (b != 0) { return lib_abs(a % b); }
	return a;
}

int main() {
	int n;
	int i;
	int sum;
	n = __input(0);
	sp = 0;
	errs = 0;
	sum = 0;
	for (i = 0; i < n; i = i + 1) {
		int t;
		t = __rand() % 10;
		// Most tokens are operands (pushes); a minority are operators.
		if (t < 6) {
			push(__rand() % 1000 + 1);
		} else {
			int b;
			int a;
			b = pop();
			a = pop();
			push(apply(t - 6, a, b));
		}
		if (sp > 48) {
			// Drain the stack when it gets deep, formatting each value
			// like bc's output routine does.
			while (sp > 8) {
				int v;
				v = pop();
				sum = sum + lib_abs(v) + lib_fmtint(v);
			}
		}
	}
	while (sp > 0) { sum = sum + pop(); }
	lib_report(sum);
	lib_report(errs);
	lib_report(lib_checksum(&stack[0], 8));
	return 0;
}
`})

	register(Entry{
		Name: "bison", Suite: SuiteOtherC, Language: ir.LangC, Seed: 102,
		About: "parser generator: LALR-style table-driven state machine over a synthetic grammar stream; taken-heavy shift loops",
		Input: []int64{1800},
		Source: `
// bison: drive a table-driven pushdown automaton over pseudo-tokens.
int action[400];
int gotoTab[400];
int states[128];
int top;

void buildTables() {
	int i;
	for (i = 0; i < 400; i = i + 1) {
		action[i] = (i * 7 + 3) % 5;   // 0 shift, 1 reduce, 2..4 variations
		gotoTab[i] = (i * 13 + 1) % 20;
	}
}

int main() {
	int n;
	int i;
	int state;
	int reduces;
	int shifts;
	n = __input(0);
	buildTables();
	top = 0;
	state = 0;
	reduces = 0;
	shifts = 0;
	states[0] = 0;
	int maxDepth;
	maxDepth = 0;
	for (i = 0; i < n; i = i + 1) {
		int tok;
		int a;
		tok = lib_randrange(0, 20);
		a = action[state * 20 + tok];
		if (a == 0 || a == 3 || a == 4) {
			// Shift: the common case.
			shifts = shifts + 1;
			if (top < 120) {
				top = top + 1;
				states[top] = state;
			}
			state = gotoTab[state * 20 + tok];
			maxDepth = lib_max(maxDepth, top);
		} else {
			// Reduce: pop a rule's worth of states.
			int len;
			len = tok % 3 + 1;
			reduces = reduces + 1;
			while (len > 0 && top > 0) {
				top = top - 1;
				len = len - 1;
			}
			state = gotoTab[states[top] * 20 + tok];
		}
	}
	lib_report(shifts);
	lib_report(reduces);
	lib_report(state);
	lib_report(maxDepth);
	lib_report(lib_checksum(&gotoTab[0], 64));
	return 0;
}
`})

	register(Entry{
		Name: "burg", Suite: SuiteOtherC, Language: ir.LangC, Seed: 103,
		About: "code-generator generator: bottom-up tree pattern matching over random expression trees built from heap cells",
		Input: []int64{60, 9},
		Source: `
// burg: label random expression trees with minimal-cost rules.
int built;

int* node(int op, int* l, int* r) {
	int* p;
	p = __alloc(4);
	p[0] = op;
	p[1] = (int) l;
	p[2] = (int) r;
	p[3] = 0; // state label
	built = built + 1;
	return p;
}

int* gen(int depth) {
	if (depth <= 0 || __rand() % 100 < 25) {
		return node(__rand() % 3, null, null); // leaf: reg, imm, mem
	}
	return node(3 + __rand() % 4, gen(depth - 1), gen(depth - 1));
}

int label(int* t) {
	int lc;
	int rc;
	int cost;
	if (t == null) { return 0; }
	lc = label((int*) t[1]);
	rc = label((int*) t[2]);
	cost = lib_min(lc + rc + 1, 1000000);
	cost = lib_max(cost, lib_abs(lc - rc));
	if (t[0] == 3 && lc == 0) { cost = cost - 1; }      // add with reg
	if (t[0] == 4 && t[1] != 0) {
		int* l;
		l = (int*) t[1];
		if (l[0] == 1) { cost = cost + 1; }             // mul by imm
	}
	if (t[0] >= 5) { cost = cost + 2; }                  // mem ops
	t[3] = cost;
	return cost;
}

int main() {
	int trees;
	int depth;
	int i;
	int total;
	trees = __input(0);
	depth = __input(1);
	built = 0;
	total = 0;
	for (i = 0; i < trees; i = i + 1) {
		int* t;
		t = gen(depth);
		total = total + label(t);
	}
	__print(total);
	__print(built);
	return 0;
}
`})

	register(Entry{
		Name: "flex", Suite: SuiteOtherC, Language: ir.LangC, Seed: 104,
		About: "lexical analyzer generator: DFA simulation over random character classes with accept/backtrack handling",
		Input: []int64{5200},
		Source: `
// flex: run a generated-style DFA over a synthetic character stream.
int delta[160];  // 20 states x 8 character classes
int accept[20];

void buildDFA() {
	int s;
	int c;
	for (s = 0; s < 20; s = s + 1) {
		for (c = 0; c < 8; c = c + 1) {
			delta[s * 8 + c] = (s * 3 + c * 5 + 1) % 20;
		}
		accept[s] = 0;
		if (s % 4 == 1) { accept[s] = 1; }
	}
}

int classify(int ch) {
	if (ch < 26) { return 0; }        // letter
	if (ch < 36) { return 1; }        // digit
	if (ch < 40) { return 2; }        // space
	if (ch < 44) { return 3; }        // punct
	if (ch < 48) { return 4; }
	if (ch < 52) { return 5; }
	if (ch < 56) { return 6; }
	return 7;
}

int main() {
	int n;
	int i;
	int state;
	int tokens;
	int chars;
	n = __input(0);
	buildDFA();
	state = 0;
	tokens = 0;
	chars = 0;
	int longest;
	int sig;
	longest = 0;
	sig = 0;
	for (i = 0; i < n; i = i + 1) {
		int ch;
		int cls;
		ch = __rand() % 64;
		cls = classify(ch);
		state = delta[state * 8 + cls];
		chars = chars + 1;
		sig = (sig + lib_hash2(state, cls)) % 1000003;
		if (accept[state]) {
			tokens = tokens + 1;
			longest = lib_max(longest, chars);
			state = 0;
		}
		if (chars > 40) {
			// Flush overly long token runs.
			chars = 0;
			state = 0;
		}
	}
	lib_report(tokens);
	lib_report(longest);
	lib_report(sig);
	return 0;
}
`})

	register(Entry{
		Name: "grep", Suite: SuiteOtherC, Language: ir.LangC, Seed: 105,
		About: "text search: naive substring match whose inner comparison loop fails fast; mostly-taken scanning branches",
		Input: []int64{420, 70, 5},
		Source: `
// grep: scan synthetic lines for a pattern, with -i style folding, a
// Boyer-Moore-ish skip table, and per-line bookkeeping.
int line[128];
int pat[8];
int skip[16];

int match(int start, int plen) {
	int j;
	for (j = 0; j < plen; j = j + 1) {
		if (line[start + j] != pat[j]) { return 0; }
	}
	return 1;
}

int matchFolded(int start, int plen) {
	int j;
	for (j = 0; j < plen; j = j + 1) {
		int c;
		c = line[start + j];
		if (c >= 8) { c = c - 8; } // fold "upper case" half
		if (c != pat[j]) { return 0; }
	}
	return 1;
}

int main() {
	int lines;
	int llen;
	int plen;
	int i;
	int hits;
	int foldedHits;
	int multi;
	int emptyish;
	lines = __input(0);
	llen = __input(1);
	plen = __input(2);
	int k;
	for (k = 0; k < plen; k = k + 1) { pat[k] = k % 4; }
	for (k = 0; k < 16; k = k + 1) {
		skip[k] = plen;
		if (k % 4 < plen) { skip[k] = plen - k % 4 - 1; }
		if (skip[k] < 1) { skip[k] = 1; }
	}
	hits = 0;
	foldedHits = 0;
	multi = 0;
	emptyish = 0;
	for (i = 0; i < lines; i = i + 1) {
		int j;
		int lineHits;
		int zeros;
		int lineHash;
		zeros = 0;
		lineHash = 0;
		for (j = 0; j < llen; j = j + 1) {
			line[j] = __rand() % 16;
			if (line[j] == 0) { zeros = zeros + 1; }
			lineHash = lib_hash2(lineHash, line[j]) % 4096;
		}
		// Bloom-style prefilter: an "impossible" hash skips the line.
		if (zeros > llen / 2 || lineHash == 1) { emptyish = emptyish + 1; }
		lineHits = 0;
		j = 0;
		while (j + plen <= llen) {
			if (match(j, plen)) {
				lineHits = lineHits + 1;
				j = j + plen;
			} else {
				j = j + skip[line[j + plen - 1]];
			}
		}
		if (lineHits > 0) { hits = hits + 1; }
		if (lineHits > 1) { multi = multi + 1; }
		// Case-folded rescan of a prefix.
		for (j = 0; j + plen <= llen && j < 24; j = j + 1) {
			if (matchFolded(j, plen)) {
				foldedHits = foldedHits + 1;
				break;
			}
		}
		// Context scan: where does the first delimiter byte sit?
		line[llen] = 0;
		if (lib_strchr(&line[0], 15) >= llen / 2) {
			emptyish = emptyish + 0; // delimiter late or absent: no-op path
		}
	}
	__print(hits);
	__print(foldedHits);
	__print(multi);
	__print(emptyish);
	return 0;
}
`})

	register(Entry{
		Name: "gzip", Suite: SuiteOtherC, Language: ir.LangC, Seed: 106,
		About: "LZ77 compressor: hash-chain longest-match search over a sliding window; few sites dominate (Q-90 of 29 in the paper)",
		Input: []int64{2600},
		Source: `
// gzip: hash-chain match finding over a synthetic byte window.
int window[4096];
int head[256];
int prev[4096];

int main() {
	int n;
	int i;
	int matched;
	int literals;
	n = __input(0);
	for (i = 0; i < 256; i = i + 1) { head[i] = -1; }
	for (i = 0; i < n && i < 4096; i = i + 1) {
		window[i] = __rand() % 20;
	}
	matched = 0;
	literals = 0;
	for (i = 2; i < n && i < 4094; i = i + 1) {
		int h;
		int cand;
		int best;
		int chain;
		h = lib_wrap(lib_hash2(window[i], window[i + 1] * 8 + window[i + 2]) % 260, 256);
		cand = head[h];
		best = 0;
		chain = 0;
		while (cand >= 0 && chain < 8) {
			int len;
			len = 0;
			while (len < 16 && i + len < 4096 && window[cand + len] == window[i + len]) {
				len = len + 1;
			}
			best = lib_max(best, len);
			cand = prev[cand];
			chain = chain + 1;
		}
		prev[i] = head[h];
		head[h] = i;
		if (best >= 3) {
			matched = matched + best;
		} else {
			literals = literals + 1;
		}
	}
	// Deflate-style post-pass: run-length code the low bits of the window.
	int bits[2048];
	int pairs[4096];
	int j;
	for (j = 0; j < 2048; j = j + 1) { bits[j] = window[j] % 2; }
	lib_report(lib_rle(&bits[0], 2048, &pairs[0]));
	lib_report(matched);
	lib_report(literals);
	return 0;
}
`})

	register(Entry{
		Name: "indent", Suite: SuiteOtherC, Language: ir.LangC, Seed: 107,
		About: "source reformatter: per-token mode tracking with many usually-true guards; roughly half the branches taken",
		Input: []int64{3400},
		Source: `
// indent: token-driven formatting state machine.
int main() {
	int n;
	int i;
	int depth;
	int col;
	int inComment;
	int emitted;
	n = __input(0);
	depth = 0;
	col = 0;
	inComment = 0;
	emitted = 0;
	for (i = 0; i < n; i = i + 1) {
		int t;
		t = __rand() % 12;
		if (inComment) {
			if (t == 11) { inComment = 0; }
			col = col + 1;
		} else {
			if (t == 0) {               // open brace
				depth = depth + 1;
				col = 0;
			} else if (t == 1) {        // close brace
				if (depth > 0) { depth = depth - 1; }
				col = 0;
			} else if (t == 2) {        // newline
				col = depth * 4;
				emitted = emitted + 1;
			} else if (t == 10) {       // comment start
				inComment = 1;
			} else {
				// Ordinary token: wrap long lines.
				col = lib_clamp(col + t, 0, 200);
				if (col > 72) {
					col = lib_min(depth, 8) * 4;
					emitted = emitted + 1;
				}
			}
		}
	}
	__print(emitted);
	__print(depth);
	return 0;
}
`})

	register(Entry{
		Name: "od", Suite: SuiteOtherC, Language: ir.LangC, Seed: 108,
		About: "octal dump: formatting loop whose duplicate-line suppression guard usually passes; fewer than half the branches taken",
		Input: []int64{2800},
		Source: `
// od: format words, suppressing repeated lines like od -v does not.
int prevLine[8];

int main() {
	int n;
	int i;
	int printed;
	int suppressed;
	n = __input(0);
	printed = 0;
	suppressed = 0;
	for (i = 0; i < n; i = i + 1) {
		int same;
		int j;
		int w;
		same = 1;
		for (j = 0; j < 8; j = j + 1) {
			w = (__rand() % 4) * 16;   // small alphabet: repeats are common
			if (w != prevLine[j]) { same = 0; }
			prevLine[j] = w;
		}
		if (same == 0) {
			// Format each word into digits, in several radixes like od's
			// -o/-x/-d flags.
			for (j = 0; j < 8; j = j + 1) {
				int v;
				int digits;
				v = prevLine[j] + 1;
				digits = lib_fmtint(v);
				while (v > 0) {
					v = v / 8;
					digits = digits + 1;
				}
				printed = printed + digits;
				// Hex needs fewer digits; decimal needs a sign column.
				if (prevLine[j] >= 16) {
					printed = printed + 2;
				} else if (prevLine[j] > 0) {
					printed = printed + 1;
				}
				// Printable-character column.
				if (prevLine[j] >= 32 && prevLine[j] < 48) {
					printed = printed + 1;
				}
			}
		} else {
			suppressed = suppressed + 1;
			// The '*' repeat marker is only printed once per run.
			if (i > 0 && suppressed % 2 == 1) { printed = printed + 1; }
		}
	}
	__print(printed);
	__print(suppressed);
	return 0;
}
`})

	register(Entry{
		Name: "perl", Suite: SuiteOtherC, Language: ir.LangC, Seed: 109,
		About: "scripting interpreter: opcode dispatch with type/validity guards that almost always pass, so most branches fall through (39.9% taken in the paper); broad flat site distribution",
		Input: []int64{2200},
		Source: `
// perl: dispatch loop of a tiny register VM with guard-style checks.
int regs[16];
int hash[64];

int htkeys[128];
int htvals[128];

int lookup(int key) {
	return lib_htget(&htkeys[0], &htvals[0], 128, lib_abs(key) % 1000, 0);
}

void store(int key, int v) {
	int ok;
	ok = lib_htput(&htkeys[0], &htvals[0], 128, lib_abs(key) % 1000, v);
	if (ok == 0) {
		// Table full: flush, like a real interpreter's symbol GC.
		int i;
		for (i = 0; i < 128; i = i + 1) { htkeys[i] = -1; }
	}
}

int main() {
	int n;
	int pc;
	int steps;
	int sum;
	n = __input(0);
	steps = 0;
	sum = 0;
	int k;
	for (k = 0; k < 128; k = k + 1) { htkeys[k] = -1; }
	for (pc = 0; pc < n; pc = pc + 1) {
		int op;
		int a;
		int b;
		op = __rand() % 16;
		a = __rand() % 16;
		b = __rand() % 16;
		steps = steps + 1;
		// Guards: nearly always true, so the guarded work falls through.
		if (a >= 0 && a < 16) {
			if (b >= 0 && b < 16) {
				if (op < 4) {
					regs[a] = regs[a] + regs[b] + 1;
				} else if (op < 7) {
					regs[a] = regs[a] - regs[b];
				} else if (op < 9) {
					regs[a] = regs[a] * 3 % 997;
				} else if (op < 11) {
					store(regs[a], regs[b]);
				} else if (op < 13) {
					regs[a] = lookup(regs[b]);
				} else if (op < 15) {
					if (regs[a] > regs[b]) { sum = sum + 1; }
				} else {
					sum = sum + regs[a] % 7;
				}
			}
		}
	}
	__print(sum);
	__print(steps);
	return 0;
}
`})

	register(Entry{
		Name: "sed", Suite: SuiteOtherC, Language: ir.LangC, Seed: 110,
		About: "stream editor: per-line pattern substitution with address-range checks",
		Input: []int64{520, 48},
		Source: `
// sed: apply s/a/b/ style edits to synthetic lines within an address range.
int line[96];

int main() {
	int lines;
	int llen;
	int i;
	int edits;
	int inRange;
	lines = __input(0);
	llen = __input(1);
	edits = 0;
	inRange = 0;
	for (i = 0; i < lines; i = i + 1) {
		int j;
		// Address range toggling: /start/,/end/.
		if (inRange == 0) {
			if (__rand() % 10 < 3) { inRange = 1; }
		} else {
			if (__rand() % 10 < 2) { inRange = 0; }
		}
		for (j = 0; j < llen; j = j + 1) { line[j] = __rand() % 8; }
		if (inRange) {
			for (j = 0; j < llen; j = j + 1) {
				if (line[j] == 3) {
					line[j] = 5;
					edits = edits + 1;
				}
			}
		}
	}
	__print(edits);
	return 0;
}
`})

	register(Entry{
		Name: "siod", Suite: SuiteOtherC, Language: ir.LangC, Seed: 111,
		About: "small lisp interpreter in C: cons-cell list building and walking with pointer-null tests",
		Input: []int64{160, 30},
		Source: `
// siod: build and reduce lisp-style lists from heap cells.
int conses;

int* cons(int car, int* cdr) {
	int* c;
	c = __alloc(2);
	c[0] = car;
	c[1] = (int) cdr;
	conses = conses + 1;
	return c;
}

int* buildList(int len) {
	int* head;
	int i;
	head = null;
	for (i = 0; i < len; i = i + 1) {
		head = cons(__rand() % 50, head);
	}
	return head;
}

int sumList(int* l) {
	int s;
	s = 0;
	while (l != null) {
		s = s + l[0];
		l = (int*) l[1];
	}
	return s;
}

int* filterEven(int* l) {
	int* out;
	out = null;
	while (l != null) {
		if (l[0] % 2 == 0) {
			out = cons(l[0], out);
		}
		l = (int*) l[1];
	}
	return out;
}

int* reverse(int* l) {
	int* out;
	out = null;
	while (l != null) {
		out = cons(l[0], out);
		l = (int*) l[1];
	}
	return out;
}

int* mergeSorted(int* a, int* b) {
	if (a == null) { return b; }
	if (b == null) { return a; }
	if (a[0] <= b[0]) {
		return cons(a[0], mergeSorted((int*) a[1], b));
	}
	return cons(b[0], mergeSorted(a, (int*) b[1]));
}

int* insertSorted(int* l, int v) {
	if (l == null) { return cons(v, null); }
	if (v <= l[0]) { return cons(v, l); }
	return cons(l[0], insertSorted((int*) l[1], v));
}

int lengthOf(int* l) {
	int n;
	n = 0;
	while (l != null) {
		n = n + 1;
		l = (int*) l[1];
	}
	return n;
}

int main() {
	int rounds;
	int len;
	int i;
	int total;
	rounds = __input(0);
	len = __input(1);
	conses = 0;
	total = 0;
	for (i = 0; i < rounds; i = i + 1) {
		int* l;
		int* sorted;
		int j;
		l = buildList(len);
		total = total + sumList(filterEven(l));
		total = total + sumList(reverse(l)) % 1000;
		// Insertion sort a sample, then merge with another list.
		sorted = null;
		for (j = 0; j < 10; j = j + 1) {
			sorted = insertSorted(sorted, __rand() % 50);
		}
		sorted = mergeSorted(sorted, insertSorted(null, 25));
		total = total + lengthOf(sorted);
	}
	__print(total);
	__print(conses);
	return 0;
}
`})

	register(Entry{
		Name: "sort", Suite: SuiteOtherC, Language: ir.LangC, Seed: 112,
		About: "external sort: quicksort plus merge pass; comparison branches near 50/50, loop branches taken",
		Input: []int64{900},
		Source: `
// sort: quicksort random keys, then verify with a merge-style scan.
int data[1024];

int scratch[1024];

int main() {
	int n;
	int i;
	int inversions;
	n = __input(0);
	for (i = 0; i < n; i = i + 1) { data[i] = __rand() % 10000; }
	// The median of an unsorted copy, then the real sort — both library.
	lib_memcpy(&scratch[0], &data[0], n);
	int median;
	median = lib_select(&scratch[0], n, n / 2);
	lib_report(median);
	lib_qsort(&data[0], 0, n - 1);
	inversions = 0;
	for (i = 1; i < n; i = i + 1) {
		if (data[i - 1] > data[i]) { inversions = inversions + 1; }
	}
	// Verify with binary searches for a sample of keys.
	int found;
	found = 0;
	for (i = 0; i < 64; i = i + 1) {
		if (lib_bsearch(&data[0], n, data[(i * 37) % n]) >= 0) {
			found = found + 1;
		}
	}
	lib_report(inversions);
	lib_report(found);
	lib_report(data[0]);
	lib_report(data[n - 1]);
	lib_report(lib_checksum(&data[0], n));
	return 0;
}
`})

	register(Entry{
		Name: "tex", Suite: SuiteOtherC, Language: ir.LangC, Seed: 113,
		About: "typesetter: paragraph line breaking with badness/penalty decisions over word widths",
		Input: []int64{340, 66},
		Source: `
// tex: greedy line breaking with badness scoring.
int widths[128];

int main() {
	int paras;
	int target;
	int p;
	int totalBadness;
	int lines;
	paras = __input(0);
	target = __input(1);
	totalBadness = 0;
	lines = 0;
	for (p = 0; p < paras; p = p + 1) {
		int nwords;
		int i;
		int cur;
		nwords = 20 + __rand() % 40;
		for (i = 0; i < nwords && i < 128; i = i + 1) {
			widths[i] = 2 + __rand() % 9;
		}
		cur = 0;
		for (i = 0; i < nwords && i < 128; i = i + 1) {
			int w;
			w = widths[i];
			if (cur + w + 1 > target) {
				int slack;
				slack = lib_max(target - cur, 0);
				totalBadness = totalBadness + lib_min(slack * slack, 10000);
				lines = lines + 1;
				cur = w;
			} else {
				if (cur > 0) { cur = cur + 1; }
				cur = cur + w;
			}
			// Hyphenation attempt for very long words.
			if (w > 9 && cur > target / 2) {
				totalBadness = totalBadness + 1;
			}
		}
		lines = lines + 1;
	}
	__print(totalBadness);
	__print(lines);
	return 0;
}
`})

	register(Entry{
		Name: "wdiff", Suite: SuiteOtherC, Language: ir.LangC, Seed: 114,
		About: "word-level diff: two-pointer alignment over similar sequences; very concentrated branch profile (Q-90 of 19 in the paper)",
		Input: []int64{180, 120},
		Source: `
// wdiff: align two mostly-equal word sequences.
int a[256];
int b[256];

int main() {
	int rounds;
	int len;
	int r;
	int same;
	int changed;
	rounds = __input(0);
	len = __input(1);
	same = 0;
	changed = 0;
	for (r = 0; r < rounds; r = r + 1) {
		int i;
		for (i = 0; i < len; i = i + 1) {
			a[i] = __rand() % 100;
			b[i] = a[i];
			if (__rand() % 100 < 8) { b[i] = __rand() % 100; }
		}
		int pa;
		int pb;
		pa = 0;
		pb = 0;
		// Fast path: identical sequences need no alignment at all.
		if (lib_memcmp(&a[0], &b[0], len) == 0) {
			same = same + len;
			pa = len;
			pb = len;
		}
		while (pa < len && pb < len) {
			if (a[pa] == b[pb]) {
				same = same + 1;
				pa = pa + 1;
				pb = pb + 1;
			} else {
				// Resynchronize: scan ahead on both sides, bounded by the
				// shorter remaining stretch.
				int k;
				int found;
				int limit;
				found = 0;
				limit = lib_min(lib_min(len - pa, len - pb), 4);
				if (limit < 1) { limit = 1; }
				for (k = 1; k <= limit && found == 0; k = k + 1) {
					if (pa + k < len && a[pa + k] == b[pb]) {
						pa = pa + k;
						found = 1;
					} else if (pb + k < len && a[pa] == b[pb + k]) {
						pb = pb + k;
						found = 1;
					}
				}
				if (found == 0) {
					pa = pa + 1;
					pb = pb + 1;
				}
				changed = changed + 1;
			}
		}
	}
	__print(same);
	__print(changed);
	return 0;
}
`})

	register(Entry{
		Name: "yacr", Suite: SuiteOtherC, Language: ir.LangC, Seed: 115,
		About: "channel router: grid scanning with dense conditional branches (19% of instructions are branches in the paper)",
		Input: []int64{70, 40},
		Source: `
// yacr: route nets across a channel grid, scanning for free tracks.
int grid[2048];
int cols;

int trackFree(int t, int lo, int hi) {
	int c;
	for (c = lo; c <= hi; c = c + 1) {
		if (grid[t * cols + c]) { return 0; }
	}
	return 1;
}

void claim(int t, int lo, int hi) {
	int c;
	for (c = lo; c <= hi; c = c + 1) {
		grid[t * cols + c] = 1;
	}
}

int main() {
	int nets;
	int tracks;
	int i;
	int routed;
	int failed;
	nets = __input(0);
	tracks = 16;
	cols = __input(1);
	routed = 0;
	failed = 0;
	for (i = 0; i < nets; i = i + 1) {
		int lo;
		int hi;
		int t;
		int placed;
		lo = __rand() % cols;
		hi = lib_min(lo + __rand() % 8, cols - 1);
		placed = 0;
		for (t = 0; t < tracks && placed == 0; t = t + 1) {
			if (trackFree(t, lo, hi)) {
				claim(t, lo, hi);
				placed = 1;
			}
		}
		if (placed) { routed = routed + 1; } else { failed = failed + 1; }
	}
	__print(routed);
	__print(failed);
	return 0;
}
`})
}
