package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// foldCheckpoint is the on-disk record of one completed fold. ConfigHash
// binds it to the exact configuration and corpus that produced it, so a
// stale checkpoint from a different run is ignored rather than resumed.
type foldCheckpoint struct {
	ConfigHash string     `json:"config_hash"`
	Fold       FoldResult `json:"fold"`
}

// checkpointHash fingerprints everything that determines fold results: the
// fully-defaulted configuration and the ordered corpus program names.
func checkpointHash(corpus []*ProgramData, cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", cfg)
	for _, pd := range corpus {
		fmt.Fprintf(h, "%s\x00", pd.Name)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func checkpointPath(dir string, i int, held string) string {
	// Program names are corpus identifiers ("bc", "gcc"), but sanitize
	// anyway so a hostile name cannot escape dir.
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, held)
	return filepath.Join(dir, fmt.Sprintf("fold-%03d-%s.json", i, safe))
}

// loadCheckpoint returns the fold recorded at path if it exists, parses,
// and carries the expected hash. Corrupt, partial, or stale files are
// treated as absent: the fold just recomputes.
func loadCheckpoint(path, wantHash string) (FoldResult, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FoldResult{}, false
	}
	var cp foldCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil || cp.ConfigHash != wantHash {
		return FoldResult{}, false
	}
	return cp.Fold, true
}

// saveCheckpoint writes the fold atomically: the JSON lands in a temp file
// in the same directory, is synced, and is renamed into place, so a crash
// mid-write leaves either the old state or the new state — never a torn
// file a resume could half-read.
func saveCheckpoint(path string, cp foldCheckpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fold-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// CrossValidateCheckpointed is CrossValidate with crash safety: each
// completed fold is checkpointed to dir (created if needed), and a rerun
// after a crash or cancellation resumes from the checkpoints instead of
// retraining finished folds. Folds run serially in corpus order; because
// every fold's training is deterministic and independent, a resumed run
// returns results bit-identical to an uninterrupted CrossValidateSerial.
//
// ctx is checked between folds: on cancellation the folds completed so far
// remain checkpointed and ctx.Err() is returned.
func CrossValidateCheckpointed(ctx context.Context, corpus []*ProgramData, cfg Config, dir string) ([]FoldResult, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	hash := checkpointHash(corpus, cfg)
	excluded := excludeSet(cfg.ExcludeFeatures)
	preps := make([]preparedProgram, len(corpus))
	for i, pd := range corpus {
		preps[i] = prepareProgram(pd, excluded)
	}
	results := make([]FoldResult, len(corpus))
	for i := range corpus {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := checkpointPath(dir, i, corpus[i].Name)
		if fold, ok := loadCheckpoint(path, hash); ok {
			results[i] = fold
			continue
		}
		results[i] = crossValidateFold(corpus, preps, i, cfg, excluded)
		if err := saveCheckpoint(path, foldCheckpoint{ConfigHash: hash, Fold: results[i]}); err != nil {
			return nil, fmt.Errorf("core: checkpoint fold %d: %w", i, err)
		}
	}
	return results, nil
}
