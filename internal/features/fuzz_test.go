package features_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/features"
)

// The fuzz encoder is trained once per process on real corpus vectors, the
// same way serving and training encoders are built.
var (
	encOnce sync.Once
	enc     *features.Encoder
	encErr  error
)

func fuzzEncoder() (*features.Encoder, error) {
	encOnce.Do(func() {
		var train []features.Vector
		for _, name := range []string{"bc", "grep", "tomcatv"} {
			e, ok := corpus.ByName(name)
			if !ok {
				continue
			}
			prog, err := e.Compile(codegen.Default)
			if err != nil {
				encErr = err
				return
			}
			train = append(train, features.ExtractAll(features.Collect(prog))...)
		}
		enc = features.NewEncoder(train)
	})
	return enc, encErr
}

// sep joins feature values in the fuzz wire form (unit separator).
const sep = "\x1f"

// corpusSeeds serializes sample vectors from every corpus program as fuzz
// seeds.
func corpusSeeds(f *testing.F) {
	f.Helper()
	for _, e := range corpus.All() {
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			f.Fatal(err)
		}
		vecs := features.ExtractAll(features.Collect(prog))
		if len(vecs) > 3 {
			vecs = vecs[:3]
		}
		for _, v := range vecs {
			f.Add(strings.Join(v.Values[:], sep))
		}
	}
}

// FuzzEncode drives the categorical encoder with arbitrary feature values —
// seeded with real vectors from all 46 corpus programs — and cross-checks
// the dense and sparse encodings against each other: Encode and
// EncodeAllSparse must agree on every column for any input, known values or
// garbage, and never panic or emit non-finite activity.
func FuzzEncode(f *testing.F) {
	corpusSeeds(f)
	f.Add("")                                      // all-empty vector
	f.Add(strings.Repeat("?"+sep, 40))             // too many fields, all unknown
	f.Add("BNE" + sep + "F" + sep + "\x00garbage") // unseen values
	f.Fuzz(func(t *testing.T, s string) {
		e, err := fuzzEncoder()
		if err != nil {
			t.Skip("corpus unavailable:", err)
		}
		vals := strings.Split(s, sep)
		if len(vals) > features.NumFeatures {
			vals = vals[:features.NumFeatures]
		}
		for len(vals) < features.NumFeatures {
			vals = append(vals, features.Unknown)
		}
		v, err := features.FromValues(vals)
		if err != nil {
			t.Fatalf("FromValues on %d values: %v", len(vals), err)
		}

		dense := make([]float64, e.Dim)
		e.Encode(v, dense)
		for i, x := range dense {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("column %d encodes to %v", i, x)
			}
		}

		sparse := e.EncodeAllSparse([]features.Vector{v})
		fromSparse := make([]float64, e.Dim)
		for k := sparse.Start[0]; k < sparse.Start[1]; k++ {
			fromSparse[sparse.Index[k]] = sparse.Value[k]
		}
		for i := range dense {
			if dense[i] != fromSparse[i] {
				t.Fatalf("column %d: dense %v != sparse %v", i, dense[i], fromSparse[i])
			}
		}
	})
}
