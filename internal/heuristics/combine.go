package heuristics

import (
	"repro/internal/features"
	"repro/internal/interp"
)

// Predictor is any static branch predictor: it predicts a direction for a
// branch site or declines (ok == false), in which case evaluation charges
// the expected 50% miss rate of a uniform random prediction, exactly as the
// paper treats uncovered branches.
type Predictor interface {
	Name() string
	PredictSite(s *features.Site) (pred Prediction, ok bool)
}

// --- BTFNT -------------------------------------------------------------------

// BTFNT is backward-taken/forward-not-taken: the baseline that relies only
// on the sign of the branch displacement.
type BTFNT struct{}

// Name implements Predictor.
func (BTFNT) Name() string { return "BTFNT" }

// PredictSite implements Predictor.
func (BTFNT) PredictSite(s *features.Site) (Prediction, bool) {
	if s.Fn.LayoutIndex(s.Branch.Target) < s.Fn.LayoutIndex(s.Ref.Block) {
		return Taken, true
	}
	return NotTaken, true
}

// --- APHC --------------------------------------------------------------------

// DefaultOrder is the fixed heuristic order used by APHC: the loop heuristic
// first (Ball and Larus always predict loop branches with it), then the
// non-loop heuristics in the best fixed order reported by Ball and Larus'
// experiment over all orders.
var DefaultOrder = []Heuristic{
	LoopBranch, Pointer, Call, Opcode, Return, Store, LoopHeader, Guard, LoopExit,
}

// APHC is the a priori heuristic combination: heuristics are tried in a
// fixed order and the first that applies predicts the branch.
type APHC struct {
	Order []Heuristic
	Cfg   Config
}

// NewAPHC returns an APHC predictor with the default order.
func NewAPHC() *APHC { return &APHC{Order: DefaultOrder} }

// Name implements Predictor.
func (a *APHC) Name() string { return "APHC" }

// PredictSite implements Predictor.
func (a *APHC) PredictSite(s *features.Site) (Prediction, bool) {
	p, _, ok := a.PredictWith(s)
	return p, ok
}

// PredictWith additionally reports which heuristic fired.
func (a *APHC) PredictWith(s *features.Site) (Prediction, Heuristic, bool) {
	order := a.Order
	if order == nil {
		order = DefaultOrder
	}
	for _, h := range order {
		if p := Apply(h, s, a.Cfg); p != None {
			return p, h, true
		}
	}
	return None, 0, false
}

// --- DSHC --------------------------------------------------------------------

// DSHC combines every applicable heuristic's evidence with the
// Dempster-Shafer combination rule (Wu and Larus). Each heuristic h that
// predicts a direction contributes its historical hit rate Prob[h] as the
// probability of that direction; the combined taken-probability is
//
//	Π p_i / (Π p_i + Π (1-p_i))
//
// over the per-heuristic taken-probabilities p_i.
type DSHC struct {
	Name_ string
	Prob  [NumHeuristics]float64 // probability the heuristic's prediction is correct
	Cfg   Config
}

// BallLarusMIPSMiss holds the per-heuristic miss rates Ball and Larus report
// on the MIPS (the "B&L (MIPS)" column of Table 6); Wu and Larus plugged
// these into Dempster-Shafer, giving the paper's DSHC(B&L) configuration.
var BallLarusMIPSMiss = [NumHeuristics]float64{
	LoopBranch: 0.12,
	Pointer:    0.40,
	Opcode:     0.16,
	Guard:      0.38,
	LoopExit:   0.20,
	LoopHeader: 0.25,
	Call:       0.22,
	Store:      0.45,
	Return:     0.28,
}

// NewDSHCBallLarus returns DSHC configured with the Ball/Larus published
// rates — the paper's "DSHC(B&L)" column.
func NewDSHCBallLarus() *DSHC {
	d := &DSHC{Name_: "DSHC(B&L)"}
	for h := Heuristic(0); h < NumHeuristics; h++ {
		d.Prob[h] = 1 - BallLarusMIPSMiss[h]
	}
	return d
}

// NewDSHCFromMiss returns DSHC configured from measured per-heuristic miss
// rates — the paper's "DSHC(Ours)" column uses the rates measured on our own
// corpus (Table 6's "Overall" column).
func NewDSHCFromMiss(name string, miss [NumHeuristics]float64) *DSHC {
	d := &DSHC{Name_: name}
	for h := Heuristic(0); h < NumHeuristics; h++ {
		p := 1 - miss[h]
		// Clamp away from 0/1: Dempster-Shafer with certainty-1 evidence
		// would veto all other heuristics.
		if p < 0.01 {
			p = 0.01
		}
		if p > 0.99 {
			p = 0.99
		}
		d.Prob[h] = p
	}
	return d
}

// Name implements Predictor.
func (d *DSHC) Name() string {
	if d.Name_ != "" {
		return d.Name_
	}
	return "DSHC"
}

// TakenProbability returns the Dempster-Shafer combined probability that the
// branch is taken, and whether any heuristic applied.
func (d *DSHC) TakenProbability(s *features.Site) (float64, bool) {
	pTaken, pNot := 1.0, 1.0
	applied := false
	for h := Heuristic(0); h < NumHeuristics; h++ {
		pred := Apply(h, s, d.Cfg)
		if pred == None {
			continue
		}
		applied = true
		p := d.Prob[h]
		if pred == Taken {
			pTaken *= p
			pNot *= 1 - p
		} else {
			pTaken *= 1 - p
			pNot *= p
		}
	}
	if !applied {
		return 0.5, false
	}
	den := pTaken + pNot
	if den == 0 {
		return 0.5, true
	}
	return pTaken / den, true
}

// PredictSite implements Predictor.
func (d *DSHC) PredictSite(s *features.Site) (Prediction, bool) {
	p, ok := d.TakenProbability(s)
	if !ok {
		return None, false
	}
	if p > 0.5 {
		return Taken, true
	}
	if p < 0.5 {
		return NotTaken, true
	}
	return None, false // exact tie: fall back to the random default
}

// --- Perfect -----------------------------------------------------------------

// Perfect is the perfect static profile predictor: with the program's own
// profile in hand it predicts each branch's majority direction — the lower
// bound for any static scheme (the paper's 8% column).
type Perfect struct {
	Prof *interp.Profile
}

// Name implements Predictor.
func (p *Perfect) Name() string { return "Perfect" }

// PredictSite implements Predictor.
func (p *Perfect) PredictSite(s *features.Site) (Prediction, bool) {
	c := p.Prof.Branches[s.Ref]
	if c == nil || c.Executed == 0 {
		return NotTaken, true
	}
	if 2*c.Taken > c.Executed {
		return Taken, true
	}
	return NotTaken, true
}

// --- Fixed -------------------------------------------------------------------

// Fixed predicts every branch the same way (a trivial baseline used in
// tests and ablations).
type Fixed struct {
	Direction Prediction
}

// Name implements Predictor.
func (f Fixed) Name() string { return "Fixed(" + f.Direction.String() + ")" }

// PredictSite implements Predictor.
func (f Fixed) PredictSite(*features.Site) (Prediction, bool) {
	return f.Direction, true
}
