package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

// runHwsimStudy runs the hardware-predictor co-simulation (dynamic
// 1-bit/2-bit/gshare/TAGE counters seeded from each static hint source,
// steady-state and cold-start) plus the branch-predictability taxonomy,
// prints both renders, and writes the machine-readable results as
// BENCH_hwsim.json.
func runHwsimStudy(ctx *experiments.Context, espCfg core.Config, genN int, dir string) error {
	hw, err := experiments.HwsimStudy(ctx, espCfg, genN)
	if err != nil {
		return err
	}
	fmt.Println(hw.Render())
	tax, err := experiments.TaxonomyStudy(ctx, genN)
	if err != nil {
		return err
	}
	fmt.Println(tax.Render())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	combined := struct {
		Hwsim    *experiments.HwsimStudyResult
		Taxonomy *experiments.TaxonomyResult
	}{hw, tax}
	data, err := json.MarshalIndent(combined, "", " ")
	if err != nil {
		return err
	}
	out := benchFile(dir, "hwsim")
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("hardware co-simulation -> %s\n", out)
	return nil
}
