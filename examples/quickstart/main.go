// Quickstart: the core ESP workflow from the paper.
//
// A corpus of programs is compiled and profiled; a neural network learns to
// map each branch's static feature set to a taken-probability; a program
// the model has never seen is then predicted from its static features
// alone, and compared against the heuristic baselines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/heuristics"
	"repro/internal/ir"
)

func main() {
	const heldOut = "gzip"

	// 1. Build the corpus: every C-group program except the one we will
	// predict. Each program is compiled to the Alpha-like IR and executed
	// once to collect its branch profile (the paper used ATOM for this).
	var train []*core.ProgramData
	var held *core.ProgramData
	for _, e := range corpus.ByLanguage(ir.LangC) {
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			log.Fatal(err)
		}
		pd, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			log.Fatal(err)
		}
		if e.Name == heldOut {
			held = pd
			continue
		}
		train = append(train, pd)
	}

	// 2. Train ESP: static feature sets in, taken-probabilities out.
	model := core.Train(train, core.Config{})
	fmt.Printf("trained on %d programs; %d input units, %d hidden units, %d epochs\n",
		len(train), model.Encoder.Dim, model.Cfg.Hidden, model.TrainStats.Epochs)

	// 3. Predict the held-out program and compare against the baselines.
	esp := &core.Predictor{Model: model}
	fmt.Printf("\nmiss rates on held-out %q:\n", heldOut)
	for _, p := range []heuristics.Predictor{
		heuristics.BTFNT{},
		heuristics.NewAPHC(),
		heuristics.NewDSHCBallLarus(),
		esp,
		&heuristics.Perfect{Prof: held.Profile},
	} {
		miss := heuristics.MissRate(held.Sites, held.Profile, p)
		fmt.Printf("  %-12s %5.1f%%\n", p.Name(), 100*miss)
	}

	// 4. Inspect a few individual predictions.
	fmt.Println("\nhottest branch sites:")
	outcomes := heuristics.Outcomes(held.Sites, held.Profile, esp)
	for _, o := range outcomes {
		if o.Executed < 5000 {
			continue
		}
		fmt.Printf("  %-22s executed %7d, taken %4.1f%%, ESP predicts %s\n",
			o.Ref, o.Executed, 100*float64(o.Taken)/float64(o.Executed), o.Pred)
	}
}
